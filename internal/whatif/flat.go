package whatif

import (
	"sync"

	"repro/internal/workload"
)

// Flat cache backend: every cached quantity lives in a numeric table keyed by
// dense IDs instead of a Go map keyed by (int, string) pairs. A cached probe
// is then a read lock, one multiplicative hash of a uint64, and a short
// linear scan over a contiguous array — no string construction, no string
// hashing, no interface boxing — which is what makes the what-if facade cheap
// enough to sit inside the candidate-evaluation inner loop.

// A pair key packs (query ID, interned index ID) into one uint64. Query IDs
// are dense int31 values, so bit 63 is always zero and the two sentinel
// values below can never collide with a real key.
func pairKeyOf(qid int, id workload.IndexID) uint64 {
	return uint64(uint32(qid))<<32 | uint64(id)
}

const (
	emptyKey = ^uint64(0)     // slot never used
	tombKey  = ^uint64(0) - 1 // slot deleted by Invalidate
)

// flatHash finalizes a pair key (murmur3 fmix64) so linear probing sees
// well-mixed low bits even though query/index IDs are dense.
func flatHash(key uint64) uint64 {
	key ^= key >> 33
	key *= 0xff51afd7ed558ccd
	key ^= key >> 33
	key *= 0xc4ceb9fe1a85ec53
	key ^= key >> 33
	return key
}

// flatShard is one shard of an open-addressed (pair key -> cost) table with
// linear probing. perQuery records, per query ID, the keys inserted for it,
// so Invalidate walks exactly that query's entries instead of scanning the
// whole shard.
type flatShard struct {
	mu       sync.RWMutex
	keys     []uint64 // power-of-two length, emptyKey-filled
	vals     []float64
	live     int // stored entries (excludes tombstones)
	used     int // occupied slots (includes tombstones; bounds probe chains)
	perQuery map[int32][]uint64
}

// lookup returns the slot of key, or false if absent. Caller holds mu.
func (s *flatShard) lookup(key uint64) (int, bool) {
	if len(s.keys) == 0 {
		return -1, false
	}
	mask := uint64(len(s.keys) - 1)
	for slot := flatHash(key) & mask; ; slot = (slot + 1) & mask {
		switch s.keys[slot] {
		case key:
			return int(slot), true
		case emptyKey:
			return -1, false
		}
	}
}

func (s *flatShard) get(key uint64) (float64, bool) {
	s.mu.RLock()
	slot, ok := s.lookup(key)
	var v float64
	if ok {
		v = s.vals[slot]
	}
	s.mu.RUnlock()
	return v, ok
}

// put stores key -> v, tolerating a concurrent miss having inserted it first.
func (s *flatShard) put(qid int, key uint64, v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if slot, ok := s.lookup(key); ok {
		s.vals[slot] = v // deterministic sources: identical value
		return
	}
	const initialSlots = 64
	if len(s.keys) == 0 {
		s.rehash(initialSlots)
	} else if (s.used+1)*4 > len(s.keys)*3 {
		s.rehash(2 * len(s.keys))
	}
	mask := uint64(len(s.keys) - 1)
	for slot := flatHash(key) & mask; ; slot = (slot + 1) & mask {
		if k := s.keys[slot]; k == emptyKey || k == tombKey {
			if k == emptyKey {
				s.used++
			}
			s.keys[slot] = key
			s.vals[slot] = v
			s.live++
			break
		}
	}
	if s.perQuery == nil {
		s.perQuery = make(map[int32][]uint64)
	}
	s.perQuery[int32(qid)] = append(s.perQuery[int32(qid)], key)
}

// rehash rebuilds the table at n slots (power of two), dropping tombstones.
// Caller holds the write lock.
func (s *flatShard) rehash(n int) {
	for n < 2*s.live {
		n *= 2
	}
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = emptyKey
	}
	vals := make([]float64, n)
	mask := uint64(n - 1)
	for i, k := range s.keys {
		if k == emptyKey || k == tombKey {
			continue
		}
		for slot := flatHash(k) & mask; ; slot = (slot + 1) & mask {
			if keys[slot] == emptyKey {
				keys[slot] = k
				vals[slot] = s.vals[i]
				break
			}
		}
	}
	s.keys, s.vals, s.used = keys, vals, s.live
}

// invalidate tombstones every entry recorded for query qid and returns how
// many were dropped — O(entries for qid), not O(shard).
func (s *flatShard) invalidate(qid int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys, ok := s.perQuery[int32(qid)]
	if !ok {
		return 0
	}
	dropped := 0
	for _, key := range keys {
		if slot, ok := s.lookup(key); ok {
			s.keys[slot] = tombKey
			s.live--
			dropped++
		}
	}
	delete(s.perQuery, int32(qid))
	return dropped
}

func (s *flatShard) len() int {
	s.mu.RLock()
	n := s.live
	s.mu.RUnlock()
	return n
}

// flatTables bundles the flat backend's caches: base costs as a slice indexed
// by query ID, index sizes as a slice indexed by interned index ID, and the
// two sharded pair tables.
type flatTables struct {
	mu        sync.RWMutex
	base      []float64 // query ID -> f_j(0), valid where baseSet
	baseSet   []bool
	sizes     []int64 // interned index ID -> p_k; -1 = missing
	sizeCount int

	indexCache [optShards]flatShard // f_j(k)
	maintCache [optShards]flatShard // per-execution maintenance cost
}

func (t *flatTables) baseGet(qid int) (float64, bool) {
	t.mu.RLock()
	ok := qid < len(t.baseSet) && t.baseSet[qid]
	var v float64
	if ok {
		v = t.base[qid]
	}
	t.mu.RUnlock()
	return v, ok
}

func (t *flatTables) basePut(qid int, v float64) {
	t.mu.Lock()
	for qid >= len(t.base) {
		t.base = append(t.base, 0)
		t.baseSet = append(t.baseSet, false)
	}
	t.base[qid], t.baseSet[qid] = v, true
	t.mu.Unlock()
}

func (t *flatTables) baseDrop(qid int) {
	t.mu.Lock()
	if qid < len(t.baseSet) {
		t.baseSet[qid] = false
	}
	t.mu.Unlock()
}

func (t *flatTables) sizeGet(id workload.IndexID) (int64, bool) {
	t.mu.RLock()
	ok := int(id) < len(t.sizes) && t.sizes[id] >= 0
	var v int64
	if ok {
		v = t.sizes[id]
	}
	t.mu.RUnlock()
	return v, ok
}

func (t *flatTables) sizePut(id workload.IndexID, v int64) {
	t.mu.Lock()
	for int(id) >= len(t.sizes) {
		t.sizes = append(t.sizes, -1)
	}
	if t.sizes[id] < 0 {
		t.sizeCount++
	}
	t.sizes[id] = v
	t.mu.Unlock()
}
