package whatif

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/workload"
)

// probeAll drives every (query, index) pair the selector would touch — base
// costs, single- and full-width index costs, maintenance, sizes — and returns
// the values keyed by probe identity for bitwise comparison.
func probeAll(w *workload.Workload, o *Optimizer) map[string]float64 {
	got := make(map[string]float64)
	for _, q := range w.Queries {
		got[fmt.Sprintf("base/%d", q.ID)] = o.BaseCost(q)
		ks := []workload.Index{workload.MustIndex(w, q.Attrs[0])}
		if len(q.Attrs) > 1 {
			ks = append(ks, workload.MustIndex(w, q.Attrs...))
		}
		for _, k := range ks {
			got[fmt.Sprintf("cost/%d/%s", q.ID, k.Key())] = o.CostWithIndex(q, k)
			got[fmt.Sprintf("maint/%d/%s", q.ID, k.Key())] = o.MaintenanceCost(q, k)
			got[fmt.Sprintf("size/%s", k.Key())] = float64(o.IndexSize(k))
		}
	}
	return got
}

// diffBitwise fails the test for any probe whose restored value is not
// bit-identical to the original.
func diffBitwise(t *testing.T, before, after map[string]float64) {
	t.Helper()
	if len(before) != len(after) {
		t.Fatalf("probe sets differ: %d vs %d", len(before), len(after))
	}
	for key, b := range before {
		a, ok := after[key]
		if !ok {
			t.Fatalf("probe %s missing after restore", key)
		}
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Errorf("probe %s: restored %v (bits %#x) != original %v (bits %#x)",
				key, a, math.Float64bits(a), b, math.Float64bits(b))
		}
	}
}

func TestSpillRoundTripBitIdentity(t *testing.T) {
	w := testWorkload(t)
	o := New(costmodel.New(w, costmodel.SingleIndex))
	before := probeAll(w, o)
	callsBefore := o.Stats().Calls
	if callsBefore == 0 {
		t.Fatal("no source calls recorded before spill")
	}

	var buf bytes.Buffer
	n, err := o.WriteTables(&buf)
	if err != nil {
		t.Fatalf("WriteTables: %v", err)
	}
	if n != int64(buf.Len()) || n == 0 {
		t.Fatalf("WriteTables reported %d bytes, buffer holds %d", n, buf.Len())
	}
	if freed := o.EvictTables(); freed == 0 {
		t.Fatal("EvictTables freed nothing")
	}
	if err := o.ReadTables(&buf); err != nil {
		t.Fatalf("ReadTables: %v", err)
	}

	after := probeAll(w, o)
	diffBitwise(t, before, after)
	// Every re-probe must be served from the restored tables: a single
	// additional source call means restore silently fell back to rebuild.
	if calls := o.Stats().Calls; calls != callsBefore {
		t.Errorf("restore leaked %d source calls (%d -> %d)", calls-callsBefore, callsBefore, calls)
	}
}

func TestSpillFileRoundTrip(t *testing.T) {
	w := testWorkload(t)
	o := New(costmodel.New(w, costmodel.SingleIndex))
	before := probeAll(w, o)
	callsBefore := o.Stats().Calls
	resident := o.TableBytes()

	path := filepath.Join(t.TempDir(), "cluster0.spill")
	freed, err := o.SpillTables(path)
	if err != nil {
		t.Fatalf("SpillTables: %v", err)
	}
	if freed != resident {
		t.Errorf("SpillTables freed %d bytes, tables held %d", freed, resident)
	}
	if o.TableBytes() != 0 {
		t.Errorf("tables not empty after spill: %d bytes", o.TableBytes())
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("spill file missing: %v", err)
	}

	restored, err := o.RestoreTables(path)
	if err != nil {
		t.Fatalf("RestoreTables: %v", err)
	}
	if restored == 0 {
		t.Error("RestoreTables reported zero resident bytes")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("spill file not consumed on restore: %v", err)
	}
	diffBitwise(t, before, probeAll(w, o))
	if calls := o.Stats().Calls; calls != callsBefore {
		t.Errorf("restore leaked %d source calls", calls-callsBefore)
	}
}

func TestSpillChecksumDetectsCorruption(t *testing.T) {
	w := testWorkload(t)
	o := New(costmodel.New(w, costmodel.SingleIndex))
	probeAll(w, o)

	var buf bytes.Buffer
	if _, err := o.WriteTables(&buf); err != nil {
		t.Fatalf("WriteTables: %v", err)
	}
	b := buf.Bytes()
	b[len(b)/2] ^= 0x40
	if err := o.ReadTables(bytes.NewReader(b)); err == nil {
		t.Fatal("ReadTables accepted a corrupted spill stream")
	}
}

func TestSpillTruncationDetected(t *testing.T) {
	w := testWorkload(t)
	o := New(costmodel.New(w, costmodel.SingleIndex))
	probeAll(w, o)

	var buf bytes.Buffer
	if _, err := o.WriteTables(&buf); err != nil {
		t.Fatalf("WriteTables: %v", err)
	}
	b := buf.Bytes()
	if err := o.ReadTables(bytes.NewReader(b[:len(b)/3])); err == nil {
		t.Fatal("ReadTables accepted a truncated spill stream")
	}
}

func TestSpillRequiresFlatBackend(t *testing.T) {
	w := testWorkload(t)
	o := NewReference(costmodel.New(w, costmodel.SingleIndex))
	if _, err := o.WriteTables(&bytes.Buffer{}); err == nil {
		t.Error("WriteTables on reference backend did not error")
	}
	if err := o.ReadTables(bytes.NewReader(nil)); err == nil {
		t.Error("ReadTables on reference backend did not error")
	}
}
