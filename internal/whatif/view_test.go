package whatif

import (
	"math"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/workload"
)

// tenantSubset builds a tenant workload using every other template of the
// superset workload, with dense local IDs and different frequencies, plus the
// canon mapping (tenant-local query ID -> superset template) a View needs.
func tenantSubset(t *testing.T, sup *workload.Workload) (*workload.Workload, []workload.Query) {
	t.Helper()
	var qs []workload.Query
	var canon []workload.Query
	for i, q := range sup.Queries {
		if i%2 != 0 {
			continue
		}
		local := q
		local.ID = len(qs)
		local.Freq = q.Freq*3 + 7 // frequencies must not matter
		qs = append(qs, local)
		canon = append(canon, q)
	}
	tw, err := workload.New(sup.Tables, sup.Attrs(), qs)
	if err != nil {
		t.Fatalf("building tenant subset workload: %v", err)
	}
	return tw, canon
}

// TestViewSubsetExactness: probing a tenant's query through a cluster View
// must return bit-identical values to a standalone optimizer built over the
// tenant's own workload — per-execution what-if costs never read frequencies,
// which is what makes superset-template sharing exact.
func TestViewSubsetExactness(t *testing.T) {
	sup := testWorkload(t)
	tw, canon := tenantSubset(t, sup)

	shared := New(costmodel.New(sup, costmodel.SingleIndex))
	view := shared.View(canon)
	standalone := New(costmodel.New(tw, costmodel.SingleIndex))

	for _, q := range tw.Queries {
		ks := []workload.Index{workload.MustIndex(tw, q.Attrs[0])}
		if len(q.Attrs) > 1 {
			ks = append(ks, workload.MustIndex(tw, q.Attrs...))
		}
		if a, b := view.BaseCost(q), standalone.BaseCost(q); math.Float64bits(a) != math.Float64bits(b) {
			t.Errorf("query %d: view base %v != standalone %v", q.ID, a, b)
		}
		for _, k := range ks {
			if a, b := view.CostWithIndex(q, k), standalone.CostWithIndex(q, k); math.Float64bits(a) != math.Float64bits(b) {
				t.Errorf("query %d, index %s: view cost %v != standalone %v", q.ID, k.Key(), a, b)
			}
			if a, b := view.MaintenanceCost(q, k), standalone.MaintenanceCost(q, k); math.Float64bits(a) != math.Float64bits(b) {
				t.Errorf("query %d, index %s: view maint %v != standalone %v", q.ID, k.Key(), a, b)
			}
			if a, b := view.IndexSize(k), standalone.IndexSize(k); a != b {
				t.Errorf("index %s: view size %d != standalone %d", k.Key(), a, b)
			}
		}
	}
}

// TestViewSharesCache: a pair first probed through the base optimizer (or a
// sibling view) must be a cache hit when re-probed through a view, and all
// call accounting lands on the shared counters.
func TestViewSharesCache(t *testing.T) {
	sup := testWorkload(t)
	tw, canon := tenantSubset(t, sup)

	shared := New(costmodel.New(sup, costmodel.SingleIndex))
	view1 := shared.View(canon)
	view2 := shared.View(canon)

	q := tw.Queries[0]
	k := workload.MustIndex(tw, q.Attrs[0])

	// Warm through the superset identity.
	supQ := canon[q.ID]
	want := shared.CostWithIndex(supQ, k)
	calls := shared.Stats().Calls

	got := view1.CostWithIndex(q, k)
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Errorf("view cost %v != superset cost %v", got, want)
	}
	if s := shared.Stats(); s.Calls != calls {
		t.Errorf("view probe of warmed pair consumed %d calls", s.Calls-calls)
	}

	// A miss through one view is a hit through its sibling.
	q2 := tw.Queries[1]
	k2 := workload.MustIndex(tw, q2.Attrs[0])
	view1.CostWithIndex(q2, k2)
	callsAfterMiss := shared.Stats().Calls
	if callsAfterMiss != calls+1 {
		t.Fatalf("cold view probe consumed %d calls, want 1", callsAfterMiss-calls)
	}
	view2.CostWithIndex(q2, k2)
	if s := shared.Stats(); s.Calls != callsAfterMiss {
		t.Errorf("sibling view probe consumed %d calls, want 0", s.Calls-callsAfterMiss)
	}
}

func TestViewOfViewPanics(t *testing.T) {
	sup := testWorkload(t)
	_, canon := tenantSubset(t, sup)
	v := New(costmodel.New(sup, costmodel.SingleIndex)).View(canon)
	defer func() {
		if recover() == nil {
			t.Error("View of a View did not panic")
		}
	}()
	v.View(canon)
}
