package whatif

import (
	"sync"

	"repro/internal/workload"
)

// Reference cache backend: the original string-keyed map implementation,
// retained verbatim behind NewReference as the differential oracle for the
// flat tables. It must keep the exact call/hit accounting and cache semantics
// the flat backend claims to reproduce; the differential tests in
// internal/core compare full selection runs across the two.
type refTables struct {
	mu        sync.RWMutex    // guards baseCache and sizeCache
	baseCache map[int]float64 // query ID -> f_j(0)
	sizeCache map[string]int64

	indexCache [optShards]pairShard // (query ID, index key) -> f_j(k)
	maintCache [optShards]pairShard // (query ID, index key) -> maintenance
}

type pairShard struct {
	mu sync.RWMutex
	m  map[pairKey]float64
}

type pairKey struct {
	query int
	index string
}

func (s *pairShard) get(key pairKey) (float64, bool) {
	s.mu.RLock()
	c, ok := s.m[key]
	s.mu.RUnlock()
	return c, ok
}

func (s *pairShard) put(key pairKey, c float64) {
	s.mu.Lock()
	s.m[key] = c
	s.mu.Unlock()
}

func newRefTables() *refTables {
	t := &refTables{
		baseCache: make(map[int]float64),
		sizeCache: make(map[string]int64),
	}
	for i := range t.indexCache {
		t.indexCache[i].m = make(map[pairKey]float64)
		t.maintCache[i].m = make(map[pairKey]float64)
	}
	return t
}

func (o *Optimizer) refBaseCost(q workload.Query) float64 {
	t := o.ref
	t.mu.RLock()
	c, ok := t.baseCache[q.ID]
	t.mu.RUnlock()
	if ok {
		o.ctr.cacheHits.Add(1)
		return c
	}
	o.ctr.calls.Add(1)
	c = sanitizeCost(o.src.BaseCost(q))
	t.mu.Lock()
	t.baseCache[q.ID] = c
	t.mu.Unlock()
	return c
}

func (o *Optimizer) refCostWithIndex(q workload.Query, k workload.Index) float64 {
	if !workload.Applicable(q, k) {
		return o.BaseCost(q)
	}
	key := pairKey{q.ID, k.Key()}
	shard := &o.ref.indexCache[shardOf(q.ID)]
	if c, ok := shard.get(key); ok {
		o.ctr.cacheHits.Add(1)
		return c
	}
	o.ctr.calls.Add(1)
	c := sanitizeCost(o.src.CostWithIndex(q, k))
	shard.put(key, c)
	return c
}

func (o *Optimizer) refMaintenanceCost(q workload.Query, k workload.Index) float64 {
	if !q.Maintains(k) {
		return 0
	}
	key := pairKey{q.ID, k.Key()}
	shard := &o.ref.maintCache[shardOf(q.ID)]
	if c, ok := shard.get(key); ok {
		return c
	}
	c := sanitizeCost(o.src.MaintenanceCost(q, k))
	shard.put(key, c)
	return c
}

func (o *Optimizer) refIndexSize(k workload.Index) int64 {
	t := o.ref
	key := k.Key()
	t.mu.RLock()
	s, ok := t.sizeCache[key]
	t.mu.RUnlock()
	if ok {
		return s
	}
	s = sanitizeSize(o.src.IndexSize(k))
	t.mu.Lock()
	t.sizeCache[key] = s
	t.mu.Unlock()
	return s
}

func (o *Optimizer) refInvalidate(q workload.Query) int {
	t := o.ref
	t.mu.Lock()
	delete(t.baseCache, q.ID)
	t.mu.Unlock()
	dropped := 0
	for _, caches := range [2]*[optShards]pairShard{&t.indexCache, &t.maintCache} {
		shard := &caches[shardOf(q.ID)]
		shard.mu.Lock()
		for key := range shard.m {
			if key.query == q.ID {
				delete(shard.m, key)
				dropped++
			}
		}
		shard.mu.Unlock()
	}
	return dropped
}

func (o *Optimizer) refStats(s *Stats) {
	t := o.ref
	t.mu.RLock()
	s.DistinctIndexes = len(t.sizeCache)
	t.mu.RUnlock()
	for i := range t.indexCache {
		sh := &t.indexCache[i]
		sh.mu.RLock()
		n := len(sh.m)
		sh.mu.RUnlock()
		s.IndexShardEntries[i] = n
		s.IndexCacheEntries += n
	}
}
