package whatif

import (
	"testing"

	"repro/internal/costmodel"
	"repro/internal/workload"
)

// populate probes a spread of base, index, maintenance and size entries and
// returns the values for later comparison.
func populate(t *testing.T, o *Optimizer, w *workload.Workload) map[string]float64 {
	t.Helper()
	vals := make(map[string]float64)
	for _, q := range w.Queries {
		vals["base:"+itoa(q.ID)] = o.BaseCost(q)
		for _, a := range q.Attrs {
			k := workload.MustIndex(w, a)
			vals["cost:"+itoa(q.ID)+":"+k.Key()] = o.CostWithIndex(q, k)
			vals["maint:"+itoa(q.ID)+":"+k.Key()] = o.MaintenanceCost(q, k)
			vals["size:"+k.Key()] = float64(o.IndexSize(k))
		}
	}
	return vals
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestEvictTablesRebuildIdentical(t *testing.T) {
	forEachBackend(t, func(t *testing.T, mk func(Source) *Optimizer) {
		w := testWorkload(t)
		o := mk(costmodel.New(w, costmodel.SingleIndex))

		if o.TableBytes() != 0 {
			t.Fatalf("fresh optimizer retains %d table bytes", o.TableBytes())
		}
		before := populate(t, o, w)
		occupied := o.TableBytes()
		if occupied <= 0 {
			t.Fatal("populated optimizer reports no table bytes")
		}
		callsBefore := o.Stats().Calls

		freed := o.EvictTables()
		if freed != occupied {
			t.Fatalf("EvictTables freed %d bytes, TableBytes reported %d", freed, occupied)
		}
		if after := o.TableBytes(); after != 0 {
			t.Fatalf("after eviction %d table bytes remain", after)
		}
		if got := o.Stats().Calls; got != callsBefore {
			t.Fatalf("eviction changed call counter: %d -> %d", callsBefore, got)
		}

		// Rebuild on demand: every probe must return the identical value.
		after := populate(t, o, w)
		if len(after) != len(before) {
			t.Fatalf("rebuild produced %d entries, want %d", len(after), len(before))
		}
		for k, v := range before {
			if after[k] != v {
				t.Fatalf("entry %s changed across eviction: %v -> %v", k, v, after[k])
			}
		}
		// The rebuild hit the source again (cold misses), so calls grew.
		if got := o.Stats().Calls; got <= callsBefore {
			t.Fatalf("rebuild consumed no source calls (%d -> %d)", callsBefore, got)
		}
		if o.TableBytes() != occupied {
			t.Fatalf("rebuilt footprint %d differs from original %d", o.TableBytes(), occupied)
		}
	})
}

func TestTableBytesMonotoneUnderProbes(t *testing.T) {
	forEachBackend(t, func(t *testing.T, mk func(Source) *Optimizer) {
		w := testWorkload(t)
		o := mk(costmodel.New(w, costmodel.SingleIndex))
		var prev int64
		for i, q := range w.Queries {
			o.BaseCost(q)
			k := workload.MustIndex(w, q.Attrs[0])
			o.CostWithIndex(q, k)
			if b := o.TableBytes(); b < prev {
				t.Fatalf("TableBytes shrank under inserts at query %d: %d -> %d", i, prev, b)
			} else {
				prev = b
			}
		}
	})
}

func TestEvictTablesConcurrentProbes(t *testing.T) {
	// Eviction racing live probes must not corrupt values: every read is
	// either a hit on the old table or a fresh deterministic evaluation.
	w := testWorkload(t)
	m := costmodel.New(w, costmodel.SingleIndex)
	o := New(m)
	q := w.Queries[0]
	k := workload.MustIndex(w, q.Attrs[0])
	want := m.CostWithIndex(q, k)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			o.EvictTables()
		}
	}()
	for i := 0; i < 2000; i++ {
		if got := o.CostWithIndex(q, k); got != want {
			t.Fatalf("probe %d returned %v during eviction, want %v", i, got, want)
		}
	}
	<-done
}
