package whatif

import (
	"math"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/workload"
)

// badSource wraps a real source and replaces every cost with Cost and every
// size with Size, exercising the sanitization boundary.
type badSource struct {
	Source
	Cost float64
	Size int64
}

func (b badSource) BaseCost(q workload.Query) float64 { return b.Cost }
func (b badSource) CostWithIndex(q workload.Query, k workload.Index) float64 {
	return b.Cost
}
func (b badSource) QueryCost(q workload.Query, sel workload.Selection) float64 {
	return b.Cost
}
func (b badSource) MaintenanceCost(q workload.Query, k workload.Index) float64 {
	return b.Cost
}
func (b badSource) IndexSize(k workload.Index) int64 { return b.Size }

func TestSanitizeCostBoundary(t *testing.T) {
	cases := []struct {
		name string
		in   float64
		want float64
	}{
		{"nan", math.NaN(), costCap},
		{"plus-inf", math.Inf(1), costCap},
		{"minus-inf", math.Inf(-1), 0},
		{"negative", -12.5, 0},
		{"over-cap", costCap * 10, costCap},
		{"zero", 0, 0},
		{"normal", 42.5, 42.5},
	}
	forEachBackend(t, func(t *testing.T, mk func(Source) *Optimizer) {
		w := testWorkload(t)
		model := costmodel.New(w, costmodel.SingleIndex)
		for _, tc := range cases {
			t.Run(tc.name, func(t *testing.T) {
				o := mk(badSource{Source: model, Cost: tc.in, Size: 64})
				q := w.Queries[0]
				k := workload.MustIndex(w, q.Attrs[0])
				if got := o.BaseCost(q); got != tc.want {
					t.Errorf("BaseCost = %v, want %v", got, tc.want)
				}
				if got := o.CostWithIndex(q, k); got != tc.want {
					t.Errorf("CostWithIndex = %v, want %v", got, tc.want)
				}
				if got := o.QueryCost(q, workload.Selection{k.Key(): k}); got != tc.want {
					t.Errorf("QueryCost = %v, want %v", got, tc.want)
				}
				// Cached reads serve the sanitized value, not the raw one.
				if got := o.CostWithIndex(q, k); got != tc.want {
					t.Errorf("cached CostWithIndex = %v, want %v", got, tc.want)
				}
			})
		}
	})
}

func TestSanitizeSizeBoundary(t *testing.T) {
	forEachBackend(t, func(t *testing.T, mk func(Source) *Optimizer) {
		w := testWorkload(t)
		model := costmodel.New(w, costmodel.SingleIndex)
		o := mk(badSource{Source: model, Cost: 1, Size: -100})
		k := workload.MustIndex(w, w.Queries[0].Attrs[0])
		if got := o.IndexSize(k); got != 0 {
			t.Errorf("negative IndexSize = %d, want clamp to 0", got)
		}
	})
}

func TestSanitizeCountsAnomalies(t *testing.T) {
	w := testWorkload(t)
	model := costmodel.New(w, costmodel.SingleIndex)
	o := New(badSource{Source: model, Cost: math.NaN(), Size: -1})
	q := w.Queries[0]
	k := workload.MustIndex(w, q.Attrs[0])

	before := mCostAnomalies.Value()
	o.BaseCost(q)
	o.CostWithIndex(q, k)
	o.IndexSize(k)
	got := mCostAnomalies.Value() - before
	if got != 3 {
		t.Errorf("anomaly counter advanced by %d, want 3", got)
	}
	// Cache hits must not re-count.
	before = mCostAnomalies.Value()
	o.BaseCost(q)
	o.CostWithIndex(q, k)
	o.IndexSize(k)
	if d := mCostAnomalies.Value() - before; d != 0 {
		t.Errorf("cached reads advanced anomaly counter by %d, want 0", d)
	}
}
