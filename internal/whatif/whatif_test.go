package whatif

import (
	"math"
	"sync"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/workload"
)

func testWorkload(t *testing.T) *workload.Workload {
	t.Helper()
	cfg := workload.DefaultGenConfig()
	cfg.Tables, cfg.AttrsPerTable, cfg.QueriesPerTable, cfg.RowsBase = 2, 10, 20, 10_000
	return workload.MustGenerate(cfg)
}

func TestCachingAndCallCounting(t *testing.T) {
	w := testWorkload(t)
	m := costmodel.New(w, costmodel.SingleIndex)
	o := New(m)
	q := w.Queries[0]
	k := workload.MustIndex(w, q.Attrs[0])

	c1 := o.CostWithIndex(q, k)
	if s := o.Stats(); s.Calls != 1 || s.CacheHits != 0 {
		t.Fatalf("after first call: %+v, want 1 call, 0 hits", s)
	}
	c2 := o.CostWithIndex(q, k)
	if c1 != c2 {
		t.Errorf("cached cost %v differs from original %v", c2, c1)
	}
	if s := o.Stats(); s.Calls != 1 || s.CacheHits != 1 {
		t.Errorf("after second call: %+v, want 1 call, 1 hit", s)
	}

	b1 := o.BaseCost(q)
	o.BaseCost(q)
	if s := o.Stats(); s.Calls != 2 || s.CacheHits != 2 {
		t.Errorf("after base calls: %+v, want 2 calls, 2 hits", s)
	}
	if b1 != m.BaseCost(q) {
		t.Errorf("BaseCost = %v, want %v", b1, m.BaseCost(q))
	}
}

func TestNonApplicableIsFree(t *testing.T) {
	w := testWorkload(t)
	m := costmodel.New(w, costmodel.SingleIndex)
	o := New(m)
	q := w.Queries[0]
	// An index whose leading attribute is not in q: resolving it must cost
	// only the (cached) base call, not a what-if call per index.
	var lead int
	for _, a := range w.Tables[q.Table].Attrs {
		if !q.Accesses(a) {
			lead = a
			break
		}
	}
	o.BaseCost(q)
	before := o.Stats().Calls
	got := o.CostWithIndex(q, workload.MustIndex(w, lead))
	if got != o.BaseCost(q) {
		t.Errorf("non-applicable cost = %v, want base", got)
	}
	if after := o.Stats().Calls; after != before {
		t.Errorf("non-applicable index consumed %d what-if calls", after-before)
	}
}

func TestQueryCostCountsCalls(t *testing.T) {
	w := testWorkload(t)
	o := New(costmodel.New(w, costmodel.SingleIndex))
	q := w.Queries[0]
	sel := workload.NewSelection(workload.MustIndex(w, q.Attrs[0]))
	o.QueryCost(q, sel)
	o.QueryCost(q, sel)
	if s := o.Stats(); s.Calls != 2 {
		t.Errorf("whole-selection calls = %d, want 2 (not cached)", s.Calls)
	}
}

func TestInvalidate(t *testing.T) {
	w := testWorkload(t)
	o := New(costmodel.New(w, costmodel.SingleIndex))
	q0, q1 := w.Queries[0], w.Queries[1]
	k0 := workload.MustIndex(w, q0.Attrs[0])
	k1 := workload.MustIndex(w, q1.Attrs[0])
	o.BaseCost(q0)
	o.BaseCost(q1)
	o.CostWithIndex(q0, k0)
	o.CostWithIndex(q1, k1)
	calls := o.Stats().Calls

	o.Invalidate(q0)
	o.BaseCost(q0)
	o.CostWithIndex(q0, k0)
	if got := o.Stats().Calls; got != calls+2 {
		t.Errorf("after invalidate, calls = %d, want %d (both q0 entries refreshed)", got, calls+2)
	}
	o.BaseCost(q1)
	o.CostWithIndex(q1, k1)
	if got := o.Stats().Calls; got != calls+2 {
		t.Errorf("invalidate(q0) also dropped q1 entries: calls = %d", got)
	}
}

func TestResetStatsKeepsCache(t *testing.T) {
	w := testWorkload(t)
	o := New(costmodel.New(w, costmodel.SingleIndex))
	q := w.Queries[0]
	o.BaseCost(q)
	o.ResetStats()
	if s := o.Stats(); s.Calls != 0 || s.CacheHits != 0 {
		t.Fatalf("ResetStats left %+v", s)
	}
	o.BaseCost(q)
	if s := o.Stats(); s.Calls != 0 || s.CacheHits != 1 {
		t.Errorf("cache not preserved across ResetStats: %+v", s)
	}
}

// TestResetStatsPreservesPairCaches pins the full ResetStats contract for
// the sharded (query, index) caches: counters go to zero, but cached index
// costs, maintenance costs, and sizes keep being served without new
// underlying calls — and the occupancy snapshot still reflects them.
func TestResetStatsPreservesPairCaches(t *testing.T) {
	w := testWorkload(t)
	o := New(costmodel.New(w, costmodel.SingleIndex))
	var indexed []workload.Index
	for _, q := range w.Queries[:8] {
		k := workload.MustIndex(w, q.Attrs[0])
		o.CostWithIndex(q, k)
		o.MaintenanceCost(q, k)
		o.IndexSize(k)
		indexed = append(indexed, k)
	}
	before := o.Stats()
	if before.Calls == 0 || before.IndexCacheEntries == 0 {
		t.Fatalf("setup produced no cached calls: %+v", before)
	}

	o.ResetStats()
	after := o.Stats()
	if after.Calls != 0 || after.CacheHits != 0 {
		t.Fatalf("ResetStats left counters %+v", after)
	}
	if after.IndexCacheEntries != before.IndexCacheEntries ||
		after.DistinctIndexes != before.DistinctIndexes ||
		after.IndexShardEntries != before.IndexShardEntries {
		t.Errorf("ResetStats disturbed cache occupancy: before %+v after %+v", before, after)
	}

	// Re-reads are served entirely from the preserved caches.
	for i, q := range w.Queries[:8] {
		o.CostWithIndex(q, indexed[i])
	}
	if s := o.Stats(); s.Calls != 0 {
		t.Errorf("caches not preserved: %d fresh calls after reset", s.Calls)
	}
}

// TestStatsOccupancy checks the observability snapshot: distinct sized
// indexes and the sharded cost-cache population (total and per shard).
func TestStatsOccupancy(t *testing.T) {
	w := testWorkload(t)
	o := New(costmodel.New(w, costmodel.SingleIndex))
	distinct := make(map[string]bool)
	entries := 0
	for _, q := range w.Queries {
		k := workload.MustIndex(w, q.Attrs[0])
		o.CostWithIndex(q, k) // one pair-cache entry per (q, lead index)
		o.IndexSize(k)
		distinct[k.Key()] = true
		entries++
	}
	s := o.Stats()
	if s.DistinctIndexes != len(distinct) {
		t.Errorf("DistinctIndexes = %d, want %d", s.DistinctIndexes, len(distinct))
	}
	if s.IndexCacheEntries != entries {
		t.Errorf("IndexCacheEntries = %d, want %d", s.IndexCacheEntries, entries)
	}
	sum := 0
	for _, n := range s.IndexShardEntries {
		sum += n
	}
	if sum != s.IndexCacheEntries {
		t.Errorf("shard occupancy sums to %d, want %d", sum, s.IndexCacheEntries)
	}
}

func TestIndexSizeCachedNotCounted(t *testing.T) {
	w := testWorkload(t)
	m := costmodel.New(w, costmodel.SingleIndex)
	o := New(m)
	k := workload.MustIndex(w, 0, 1)
	s1 := o.IndexSize(k)
	s2 := o.IndexSize(k)
	if s1 != m.IndexSize(k) || s1 != s2 {
		t.Errorf("IndexSize = %d/%d, want %d", s1, s2, m.IndexSize(k))
	}
	if s := o.Stats(); s.Calls != 0 {
		t.Errorf("size lookups counted as what-if calls: %+v", s)
	}
}

func TestConcurrentAccess(t *testing.T) {
	w := testWorkload(t)
	o := New(costmodel.New(w, costmodel.SingleIndex))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, q := range w.Queries {
				o.BaseCost(q)
				for _, a := range q.Attrs {
					o.CostWithIndex(q, workload.MustIndex(w, a))
				}
			}
		}()
	}
	wg.Wait()
	// Every distinct (query, applicable single index) pair plus base costs,
	// counted at most once each despite 8 goroutines... races on first
	// evaluation may double-count, but the cache must converge: re-reading
	// is all hits.
	before := o.Stats()
	for _, q := range w.Queries {
		o.BaseCost(q)
	}
	after := o.Stats()
	if after.Calls != before.Calls {
		t.Errorf("post-warm reads performed %d extra calls", after.Calls-before.Calls)
	}
}

// TestConcurrentValuesMatchSerial fills one optimizer from 8 goroutines and
// one serially, then compares every cached value — the sharded caches must
// not mix up keys or lose writes, across all four cached cost kinds.
func TestConcurrentValuesMatchSerial(t *testing.T) {
	cfg := workload.DefaultGenConfig()
	cfg.Tables, cfg.AttrsPerTable, cfg.QueriesPerTable, cfg.RowsBase = 3, 12, 30, 10_000
	cfg.WriteShare = 0.2
	w := workload.MustGenerate(cfg)
	m := costmodel.New(w, costmodel.SingleIndex)
	serial, parallel := New(m), New(m)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Different goroutines start at different offsets so shards see
			// genuinely interleaved first-fills.
			for i := range w.Queries {
				q := w.Queries[(i+g*5)%len(w.Queries)]
				parallel.BaseCost(q)
				for _, a := range q.Attrs {
					k := workload.MustIndex(w, a)
					parallel.CostWithIndex(q, k)
					parallel.MaintenanceCost(q, k)
					parallel.IndexSize(k)
				}
			}
		}(g)
	}
	wg.Wait()

	for _, q := range w.Queries {
		if got, want := parallel.BaseCost(q), serial.BaseCost(q); got != want {
			t.Fatalf("BaseCost(%d) = %v, serial %v", q.ID, got, want)
		}
		for _, a := range q.Attrs {
			k := workload.MustIndex(w, a)
			if got, want := parallel.CostWithIndex(q, k), serial.CostWithIndex(q, k); got != want {
				t.Fatalf("CostWithIndex(%d, %v) = %v, serial %v", q.ID, k, got, want)
			}
			if got, want := parallel.MaintenanceCost(q, k), serial.MaintenanceCost(q, k); got != want {
				t.Fatalf("MaintenanceCost(%d, %v) = %v, serial %v", q.ID, k, got, want)
			}
			if got, want := parallel.IndexSize(k), serial.IndexSize(k); got != want {
				t.Fatalf("IndexSize(%v) = %v, serial %v", k, got, want)
			}
		}
	}
}

func TestNoisySource(t *testing.T) {
	w := testWorkload(t)
	m := costmodel.New(w, costmodel.SingleIndex)
	n := NoisySource{Src: m, Eps: 0.1, Seed: 42}
	q := w.Queries[0]
	k := workload.MustIndex(w, q.Attrs[0])

	// Deterministic: repeated calls agree.
	if n.BaseCost(q) != n.BaseCost(q) {
		t.Error("NoisySource.BaseCost not deterministic")
	}
	if n.CostWithIndex(q, k) != n.CostWithIndex(q, k) {
		t.Error("NoisySource.CostWithIndex not deterministic")
	}
	// Bounded perturbation.
	exact := m.CostWithIndex(q, k)
	noisy := n.CostWithIndex(q, k)
	if math.Abs(noisy-exact) > 0.1*exact+1e-9 {
		t.Errorf("noise out of bounds: exact %v, noisy %v", exact, noisy)
	}
	// Sizes stay exact.
	if n.IndexSize(k) != m.IndexSize(k) {
		t.Error("NoisySource perturbed IndexSize")
	}
	// Different seeds differ somewhere.
	n2 := NoisySource{Src: m, Eps: 0.1, Seed: 43}
	diff := false
	for _, q := range w.Queries[:10] {
		if n.BaseCost(q) != n2.BaseCost(q) {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds produced identical noise")
	}
	// QueryCost perturbs but stays in bounds too.
	sel := workload.NewSelection(k)
	exactQ := m.QueryCost(q, sel)
	noisyQ := n.QueryCost(q, sel)
	if math.Abs(noisyQ-exactQ) > 0.1*exactQ+1e-9 {
		t.Errorf("QueryCost noise out of bounds: %v vs %v", noisyQ, exactQ)
	}
}
