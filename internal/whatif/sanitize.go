package whatif

import (
	"math"

	"repro/internal/telemetry"
)

// mCostAnomalies counts source results rejected at the optimizer boundary:
// NaN, ±Inf, or negative costs, and negative sizes. Sanitization happens
// before caching, so a broken estimate is counted once per distinct
// evaluation, not once per cache read.
var mCostAnomalies = telemetry.Default().Counter("indexsel_cost_anomalies_total",
	"Non-finite or negative costs/sizes returned by a what-if Source and clamped at the Optimizer boundary.")

// costCap is the clamp for NaN/+Inf costs. It must be (a) large enough that a
// poisoned estimate never looks attractive — no sane workload cost comes
// within orders of magnitude of it — and (b) small enough that multiplying by
// per-query frequencies (int64, up to ~9.2e18) and summing over a workload
// stays finite. 1e100 * 9.2e18 * any realistic query count ≪ MaxFloat64
// (~1.8e308).
const costCap = 1e100

// sanitizeCost enforces the Source contract (finite, non-negative costs) at
// the caching boundary so an anomaly can never enter the gain cache or the
// frontier. NaN and +Inf clamp to costCap (pessimistic: the candidate is
// never chosen, but arithmetic downstream stays finite); -Inf and negative
// values clamp to zero (a cost can legitimately be zero, never less).
func sanitizeCost(c float64) float64 {
	if c >= 0 && c <= costCap { // finite, non-negative fast path
		return c
	}
	mCostAnomalies.Inc()
	if math.IsNaN(c) || c > costCap { // NaN or +Inf or absurdly large
		return costCap
	}
	return 0 // negative or -Inf
}

// sanitizeSize enforces non-negative index sizes; a negative size would make
// a candidate look budget-free (or worse, relax the budget for others).
func sanitizeSize(s int64) int64 {
	if s >= 0 {
		return s
	}
	mCostAnomalies.Inc()
	return 0
}
