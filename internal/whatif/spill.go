package whatif

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"
	"path/filepath"

	"repro/internal/workload"
)

// Spill-to-disk for evicted cost tables (fleet mode). Every cached value is a
// deterministic function of the source, so an evicted table can always be
// rebuilt — but rebuilding replays what-if source calls, which on an
// engine-measured source means re-executing queries. Spilling instead
// serializes the flat tables to a compact binary file on eviction and
// restores them bit-identically on re-dispatch: restore is a sequential read
// plus hash inserts, orders of magnitude cheaper than the source.
//
// Format (little-endian throughout):
//
//	magic     [8]byte  "WIFSPIL1"
//	nBase     uint32   then nBase x (qid uint32, costBits uint64)
//	nSizes    uint32   then nSizes x (indexID uint32, size uint64)
//	32 index-cost shards: count uint32, then count x (pairKey uint64, costBits uint64)
//	32 maintenance shards: same layout
//	checksum  uint64   FNV-1a over every preceding byte
//
// Costs are stored as math.Float64bits so the round trip is bit-exact (the
// differential tests compare restored values bitwise). Pair keys pack
// (query ID << 32 | interned index ID); the per-query invalidation lists are
// reconstructed from key>>32 on restore rather than stored. Interned index
// IDs are assigned in first-intern order and are therefore process-local:
// a spill file is only meaningful to the optimizer (strictly: the interner)
// that wrote it, within one process run. Fleet spill files live under a
// per-run directory and are consumed on restore.

// spillMagic identifies a whatif spill file; the trailing digit versions the
// layout.
var spillMagic = [8]byte{'W', 'I', 'F', 'S', 'P', 'I', 'L', '1'}

var errRefSpill = errors.New("whatif: table spill requires the flat backend")

// ErrSpillCorrupt tags every way a spill file can fail structural
// verification — truncation, checksum mismatch, bad magic, sentinel pair
// keys, trailing bytes. Callers (fleet's TableBudget) classify restore
// failures with errors.Is(err, ErrSpillCorrupt) and degrade to a source
// rebuild instead of failing the tenant: corruption costs performance,
// never correctness. No table entry is applied before verification passes.
var ErrSpillCorrupt = errors.New("whatif: spill file corrupt")

// WriteTables serializes the optimizer's cost tables to w in the spill format
// and returns the number of bytes written. The tables are left intact; pair
// EvictTables after a successful write to free them (or use SpillTables,
// which does both). Flat backend only.
func (o *Optimizer) WriteTables(w io.Writer) (int64, error) {
	if o.flat == nil {
		return 0, errRefSpill
	}
	if o.canon != nil {
		return 0, errors.New("whatif: spill through the base optimizer, not a tenant View")
	}
	buf := o.appendTables(make([]byte, 0, o.spillSizeHint()))
	h := fnv.New64a()
	h.Write(buf)
	buf = binary.LittleEndian.AppendUint64(buf, h.Sum64())
	n, err := w.Write(buf)
	return int64(n), err
}

// spillSizeHint estimates the serialized size so appendTables allocates once.
func (o *Optimizer) spillSizeHint() int {
	t := o.flat
	t.mu.RLock()
	n := 8 + 4 + 12*len(t.base) + 4 + 12*len(t.sizes) + 8
	t.mu.RUnlock()
	for i := range t.indexCache {
		n += 4 + 16*t.indexCache[i].len()
		n += 4 + 16*t.maintCache[i].len()
	}
	return n
}

func (o *Optimizer) appendTables(buf []byte) []byte {
	t := o.flat
	buf = append(buf, spillMagic[:]...)

	t.mu.RLock()
	nBase := 0
	for _, set := range t.baseSet {
		if set {
			nBase++
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(nBase))
	for qid, set := range t.baseSet {
		if set {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(qid))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(t.base[qid]))
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(t.sizeCount))
	for id, sz := range t.sizes {
		if sz >= 0 {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(id))
			buf = binary.LittleEndian.AppendUint64(buf, uint64(sz))
		}
	}
	t.mu.RUnlock()

	for i := range t.indexCache {
		buf = t.indexCache[i].appendEntries(buf)
	}
	for i := range t.maintCache {
		buf = t.maintCache[i].appendEntries(buf)
	}
	return buf
}

// appendEntries serializes the shard's live entries: count, then
// (key, valueBits) pairs in slot order.
func (s *flatShard) appendEntries(buf []byte) []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.live))
	for i, k := range s.keys {
		if k == emptyKey || k == tombKey {
			continue
		}
		buf = binary.LittleEndian.AppendUint64(buf, k)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.vals[i]))
	}
	return buf
}

// ReadTables restores cost tables from a spill stream written by WriteTables.
// Entries are merged into the current tables (identical values under a
// deterministic source, so merging is safe); the expected use is restoring
// into just-evicted, empty tables. The checksum trailer is verified before
// any entry is applied. Flat backend only.
func (o *Optimizer) ReadTables(r io.Reader) error {
	if o.flat == nil {
		return errRefSpill
	}
	if o.canon != nil {
		return errors.New("whatif: restore through the base optimizer, not a tenant View")
	}
	buf, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("whatif: reading spill: %w", err)
	}
	if len(buf) < len(spillMagic)+8 {
		return fmt.Errorf("%w: truncated header", ErrSpillCorrupt)
	}
	payload, trailer := buf[:len(buf)-8], buf[len(buf)-8:]
	h := fnv.New64a()
	h.Write(payload)
	if got, want := h.Sum64(), binary.LittleEndian.Uint64(trailer); got != want {
		return fmt.Errorf("%w: checksum mismatch: %#x != %#x", ErrSpillCorrupt, got, want)
	}
	c := spillCursor{buf: payload}
	var magic [8]byte
	copy(magic[:], c.take(8))
	if magic != spillMagic {
		return fmt.Errorf("%w: bad magic %q", ErrSpillCorrupt, magic[:])
	}

	t := o.flat
	nBase := int(c.u32())
	for i := 0; i < nBase; i++ {
		qid := int(c.u32())
		t.basePut(qid, math.Float64frombits(c.u64()))
	}
	nSizes := int(c.u32())
	for i := 0; i < nSizes; i++ {
		id := c.u32()
		t.sizePut(workload.IndexID(id), int64(c.u64()))
	}
	for i := range t.indexCache {
		if err := t.indexCache[i].readEntries(&c); err != nil {
			return err
		}
	}
	for i := range t.maintCache {
		if err := t.maintCache[i].readEntries(&c); err != nil {
			return err
		}
	}
	if c.err != nil {
		return fmt.Errorf("%w: truncated: %v", ErrSpillCorrupt, c.err)
	}
	if len(c.buf) != c.off {
		return fmt.Errorf("%w: %d trailing bytes in payload", ErrSpillCorrupt, len(c.buf)-c.off)
	}
	return nil
}

// readEntries merges one serialized shard into s, pre-sizing the table so the
// inserts never rehash mid-restore.
func (s *flatShard) readEntries(c *spillCursor) error {
	n := int(c.u32())
	if c.err != nil {
		return fmt.Errorf("%w: truncated: %v", ErrSpillCorrupt, c.err)
	}
	if n > 0 {
		s.reserve(n)
	}
	for i := 0; i < n; i++ {
		key := c.u64()
		bits := c.u64()
		if c.err != nil {
			return fmt.Errorf("%w: truncated: %v", ErrSpillCorrupt, c.err)
		}
		if key == emptyKey || key == tombKey {
			return fmt.Errorf("%w: sentinel pair key %#x", ErrSpillCorrupt, key)
		}
		s.put(int(key>>32), key, math.Float64frombits(bits))
	}
	return nil
}

// reserve grows the shard to hold at least n live entries without rehashing.
func (s *flatShard) reserve(n int) {
	s.mu.Lock()
	need := 64
	for need < 2*(s.live+n) {
		need *= 2
	}
	if need > len(s.keys) {
		s.rehash(need)
	}
	s.mu.Unlock()
}

// spillCursor walks a byte slice with sticky short-read error tracking.
type spillCursor struct {
	buf []byte
	off int
	err error
}

func (c *spillCursor) take(n int) []byte {
	if c.err != nil || c.off+n > len(c.buf) {
		if c.err == nil {
			c.err = io.ErrUnexpectedEOF
		}
		return make([]byte, n)
	}
	b := c.buf[c.off : c.off+n]
	c.off += n
	return b
}

func (c *spillCursor) u32() uint32 { return binary.LittleEndian.Uint32(c.take(4)) }
func (c *spillCursor) u64() uint64 { return binary.LittleEndian.Uint64(c.take(8)) }

// SpillTables writes the tables to path (atomically, via a same-directory
// temp file) and then evicts them, returning the estimated bytes freed. On
// write error the tables are left intact and nothing is evicted.
func (o *Optimizer) SpillTables(path string) (int64, error) {
	if o.flat == nil {
		return 0, errRefSpill
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".spill-*")
	if err != nil {
		return 0, fmt.Errorf("whatif: creating spill file: %w", err)
	}
	if _, err := o.WriteTables(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("whatif: writing spill file: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("whatif: closing spill file: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("whatif: publishing spill file: %w", err)
	}
	return o.EvictTables(), nil
}

// RestoreTables reads a spill file written by SpillTables back into the
// (typically just-evicted) tables and deletes it — spill files are consumed
// exactly once. Returns the estimated resident bytes of the restored tables.
func (o *Optimizer) RestoreTables(path string) (int64, error) {
	if o.flat == nil {
		return 0, errRefSpill
	}
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("whatif: opening spill file: %w", err)
	}
	err = o.ReadTables(f)
	f.Close()
	if err != nil {
		return 0, err
	}
	os.Remove(path)
	return o.TableBytes(), nil
}
