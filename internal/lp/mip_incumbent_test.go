package lp

import (
	"math"
	"strings"
	"testing"
)

// incumbentKnapsack builds max 8a+11b+6c+4d s.t. 5a+7b+4c+3d <= 14, binary —
// i.e. min the negated objective. Optimum picks b, c, d (value 21, weight 14).
func incumbentKnapsack() *Model {
	m := NewModel()
	a := m.AddVar(-8, "a", 1, true)
	b := m.AddVar(-11, "b", 1, true)
	c := m.AddVar(-6, "c", 1, true)
	d := m.AddVar(-4, "d", 1, true)
	m.AddConstraint(map[int]float64{a: 5, b: 7, c: 4, d: 3}, LE, 14)
	return m
}

func TestMIPIncumbentSeedsSearch(t *testing.T) {
	m := incumbentKnapsack()
	// Feasible but suboptimal: {b, d} = value 15.
	res, err := SolveMIP(m, MIPOptions{Incumbent: []float64{0, 1, 0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || math.Abs(res.Objective-(-21)) > 1e-9 {
		t.Fatalf("status=%v obj=%v, want optimal -21", res.Status, res.Objective)
	}

	// With a wide-open gap the seeded incumbent terminates the search at the
	// root (the root's floor heuristic may still sharpen it, but no
	// branching happens).
	res, err = SolveMIP(m, MIPOptions{Incumbent: []float64{0, 1, 0, 1}, Gap: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective > -15 {
		t.Fatalf("obj=%v, want the seeded incumbent -15 or better", res.Objective)
	}
	if res.Nodes > 1 {
		t.Fatalf("nodes=%d, want gap to fire at the root", res.Nodes)
	}
	if res.DNF {
		t.Fatal("DNF set on a gap-terminated solve")
	}
}

func TestMIPIncumbentRejected(t *testing.T) {
	m := incumbentKnapsack()
	cases := []struct {
		name string
		x    []float64
		want string
	}{
		{"wrong length", []float64{1, 0}, "entries"},
		{"fractional", []float64{0.5, 0, 0, 0}, "fractional"},
		{"bounds", []float64{2, 0, 0, 0}, "bounds"},
		{"infeasible", []float64{1, 1, 1, 1}, "constraint"},
	}
	for _, tc := range cases {
		if _, err := SolveMIP(m, MIPOptions{Incumbent: tc.x}); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err=%v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

func TestMIPCrashAtUpper(t *testing.T) {
	m := incumbentKnapsack()
	plain, err := SolveMIP(m, MIPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// A crash hint only changes the starting vertex: any hint set — including
	// out-of-range indices, which are ignored — must reach the same optimum.
	for _, hint := range [][]int{{0}, {1, 3}, {0, 1, 2, 3}, {-1, 2, 99}} {
		res, err := SolveMIP(m, MIPOptions{CrashAtUpper: hint})
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != Optimal || math.Abs(res.Objective-plain.Objective) > 1e-9 {
			t.Fatalf("hint %v: status=%v obj=%v, want optimal %v",
				hint, res.Status, res.Objective, plain.Objective)
		}
		if res.WarmStartHits != plain.WarmStartHits {
			t.Fatalf("hint %v: crash start counted as a warm-start hit", hint)
		}
	}
	// Hints on columns without a finite upper bound are ignored, not applied.
	free := NewModel()
	x := free.AddVar(1, "x", math.Inf(1), false)
	free.AddConstraint(map[int]float64{x: 1}, GE, 2)
	res, err := SolveMIP(free, MIPOptions{CrashAtUpper: []int{x}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || math.Abs(res.Objective-2) > 1e-9 {
		t.Fatalf("status=%v obj=%v, want optimal 2", res.Status, res.Objective)
	}
}

func TestMIPRootRelaxationReported(t *testing.T) {
	m := incumbentKnapsack()
	res, err := SolveMIP(m, MIPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.RootDuals == nil || len(res.RootDuals) != m.NumConstraints() {
		t.Fatalf("RootDuals=%v, want one per constraint", res.RootDuals)
	}
	if res.RootX == nil || len(res.RootX) != m.NumVars() {
		t.Fatalf("RootX has %d entries, want %d", len(res.RootX), m.NumVars())
	}
	if res.RootObjective > res.Objective+1e-9 {
		t.Fatalf("root relaxation %v above MIP optimum %v", res.RootObjective, res.Objective)
	}
	// The root LP is the plain relaxation: duals and objective must agree
	// with a standalone SolveLP of the same model.
	sol, err := SolveLP(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-res.RootObjective) > 1e-9 {
		t.Fatalf("root obj %v != SolveLP obj %v", res.RootObjective, sol.Objective)
	}
	for i := range sol.RowDuals {
		if math.Abs(sol.RowDuals[i]-res.RootDuals[i]) > 1e-9 {
			t.Fatalf("dual %d: %v != %v", i, res.RootDuals[i], sol.RowDuals[i])
		}
	}
}

func TestLPRowDualsSatisfyDuality(t *testing.T) {
	// min -3x - 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18: classic LP with
	// known optimum (2, 6), duals (0, -3/2, -1) under the "reduced cost =
	// obj - yA" sign convention for <= rows in a minimization.
	m := NewModel()
	x := m.AddVar(-3, "x", math.Inf(1), false)
	y := m.AddVar(-5, "y", math.Inf(1), false)
	m.AddConstraint(map[int]float64{x: 1}, LE, 4)
	m.AddConstraint(map[int]float64{y: 2}, LE, 12)
	m.AddConstraint(map[int]float64{x: 3, y: 2}, LE, 18)
	sol, err := SolveLP(m)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective-(-36)) > 1e-9 {
		t.Fatalf("status=%v obj=%v, want optimal -36", sol.Status, sol.Objective)
	}
	want := []float64{0, -1.5, -1}
	for i, w := range want {
		if math.Abs(sol.RowDuals[i]-w) > 1e-9 {
			t.Fatalf("dual %d = %v, want %v", i, sol.RowDuals[i], w)
		}
	}
	// Strong duality: y'b equals the primal objective.
	var yb float64
	for i, rhs := range []float64{4, 12, 18} {
		yb += sol.RowDuals[i] * rhs
	}
	if math.Abs(yb-sol.Objective) > 1e-9 {
		t.Fatalf("dual objective %v != primal %v", yb, sol.Objective)
	}
}
