package lp

import "math"

// prob is the solver's standard form of a Model:
//
//	minimize c·x  subject to  A x + s = b,
//
// with structural variables x_j ∈ [lo_j, up_j] (lo 0 unless overridden by
// branching) and one logical variable s_i per row whose bounds encode the
// row sense: LE → [0, +Inf), GE → (-Inf, 0], EQ → [0, 0]. Columns
// 0..n-1 are structural, n..n+m-1 logical; logical column n+i is the unit
// vector e_i. Rows are scaled by 1/max|coeff| so the variable-upper-bound
// rows (coefficients ±1) and the byte-denominated memory-budget row live on
// comparable magnitudes.
//
// The matrix is stored twice: column-wise (CSC) for FTRAN/pricing and
// row-wise (CSR) for the pivot-row gather of the dual simplex. Both are
// immutable after compile, so branch-and-bound workers share one prob.
type prob struct {
	m, n int // rows, structural columns

	// CSC over structural columns.
	colPtr []int32
	colRow []int32
	colVal []float64
	// CSR over the same entries.
	rowPtr []int32
	rowCol []int32
	rowVal []float64

	b        []float64 // scaled right-hand sides
	c        []float64 // structural objective (logical costs are zero)
	lo       []float64 // length n+m
	up       []float64 // length n+m
	rowScale []float64 // per-row scale applied at compile (1/max|coeff|)

	cScale float64 // max(1, max|c_j|): dual tolerances scale with it
}

// compile converts a model into solver standard form.
func compile(mdl *Model) *prob {
	n := mdl.NumVars()
	mRows := len(mdl.cons)
	p := &prob{
		m:  mRows,
		n:  n,
		b:  make([]float64, mRows),
		c:  make([]float64, n),
		lo: make([]float64, n+mRows),
		up: make([]float64, n+mRows),
	}
	copy(p.c, mdl.obj)
	p.cScale = 1
	for _, cj := range mdl.obj {
		if a := math.Abs(cj); a > p.cScale {
			p.cScale = a
		}
	}
	for j := 0; j < n; j++ {
		p.lo[j] = 0
		p.up[j] = mdl.upper[j]
	}

	// Row scales.
	scale := make([]float64, mRows)
	for i, con := range mdl.cons {
		mx := 0.0
		for _, v := range con.Vals {
			if a := math.Abs(v); a > mx {
				mx = a
			}
		}
		if mx == 0 {
			mx = 1
		}
		scale[i] = 1 / mx
	}
	p.rowScale = scale

	// Counts, then fill CSC and CSR.
	colCnt := make([]int32, n+1)
	rowCnt := make([]int32, mRows+1)
	for i, con := range mdl.cons {
		rowCnt[i+1] = int32(len(con.Cols))
		for _, j := range con.Cols {
			colCnt[j+1]++
		}
	}
	for j := 0; j < n; j++ {
		colCnt[j+1] += colCnt[j]
	}
	for i := 0; i < mRows; i++ {
		rowCnt[i+1] += rowCnt[i]
	}
	nnz := int(rowCnt[mRows])
	p.colPtr = colCnt
	p.colRow = make([]int32, nnz)
	p.colVal = make([]float64, nnz)
	p.rowPtr = rowCnt
	p.rowCol = make([]int32, nnz)
	p.rowVal = make([]float64, nnz)

	colNext := make([]int32, n)
	for j := range colNext {
		colNext[j] = p.colPtr[j]
	}
	for i, con := range mdl.cons {
		s := scale[i]
		p.b[i] = con.RHS * s
		base := p.rowPtr[i]
		for k, j := range con.Cols {
			v := con.Vals[k] * s
			p.rowCol[base+int32(k)] = j
			p.rowVal[base+int32(k)] = v
			at := colNext[j]
			p.colRow[at] = int32(i)
			p.colVal[at] = v
			colNext[j] = at + 1
		}
		// Logical bounds by sense.
		li := n + i
		switch con.Sense {
		case LE:
			p.lo[li], p.up[li] = 0, math.Inf(1)
		case GE:
			p.lo[li], p.up[li] = math.Inf(-1), 0
		case EQ:
			p.lo[li], p.up[li] = 0, 0
		}
	}
	return p
}

// colNNZ returns the number of stored entries of structural column j.
func (p *prob) colNNZ(j int32) int32 { return p.colPtr[j+1] - p.colPtr[j] }
