package lp

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/telemetry"
)

// MIPOptions controls branch and bound.
type MIPOptions struct {
	// Gap is the relative optimality gap at which the search stops
	// (e.g. 0.05 mirrors the paper's mipgap=0.05 CPLEX setting). Zero means
	// solve to proven optimality.
	Gap float64
	// Deadline aborts the search; the incumbent (if any) is returned with
	// DNF set. Zero means no deadline. The deadline is polled inside
	// simplex iterations, so a single long LP cannot overrun it.
	Deadline time.Time
	// Context, if non-nil, cancels the search with the same graceful
	// degradation as Deadline: it is checked in the serial reducer loop
	// between node batches, and its own deadline (if earlier) is merged into
	// Deadline so even a single long LP honors it. On cancellation the
	// incumbent (if any) is returned with DNF set — never an error.
	Context context.Context
	// MaxNodes bounds the number of explored nodes; 0 means unlimited.
	// Hitting the limit before the gap is proven sets DNF.
	MaxNodes int
	// Parallelism is the number of worker goroutines solving node LPs.
	// 0 means GOMAXPROCS. Results are bit-identical at any setting: nodes
	// are dispatched in fixed-size batches and all incumbent, bound,
	// pseudo-cost and branching decisions happen in a serial reducer that
	// consumes batch results in deterministic order.
	Parallelism int
	// Cutoff is an externally known feasible objective value (an upper
	// bound for this minimization), e.g. from a greedy heuristic. Nodes
	// whose relaxation bound cannot beat it are pruned before any
	// incumbent exists. Zero means no cutoff.
	Cutoff float64
	// Incumbent, when non-nil, is a known feasible point (length NumVars,
	// integral on the integer variables) installed as the starting
	// incumbent. Unlike Cutoff it is a real solution: gap-based termination
	// can fire from the first node, and the search never depends on the
	// floor heuristic stumbling onto a feasible point. SolveMIP returns an
	// error if the vector is infeasible or fractional.
	Incumbent []float64
	// CrashAtUpper lists variable indices whose root LP starts nonbasic at
	// the upper bound instead of the lower (a crash hint, typically the
	// support of a heuristic solution). On variable-upper-bound structures
	// like CoPhy's z ≤ x rows, the all-lower start makes every early pivot
	// degenerate — z cannot rise until its x does — and the root LP drowns
	// in stalling; starting the hinted x columns at their bound gives those
	// rows slack immediately. Indices out of range or with a non-finite
	// upper bound are ignored; child nodes warm-start from parent bases as
	// usual. The hint only picks the starting vertex — it does not affect
	// which optimum is found.
	CrashAtUpper []int
	// Span, when non-nil, receives lp.mip child spans (one per node batch)
	// and summary attributes.
	Span *telemetry.Span
}

// MIPResult is the outcome of SolveMIP.
type MIPResult struct {
	Solution
	// Bound is the best proven lower bound on the optimum.
	Bound float64
	// Gap is the final relative gap between incumbent and bound.
	Gap float64
	// Nodes is the number of branch-and-bound nodes whose LP was solved.
	Nodes int
	// DNF reports that the deadline or node limit was hit before the gap
	// was proven ("did not finish", Table I).
	DNF bool
	// SimplexIters counts simplex iterations across all node LPs.
	SimplexIters int
	// Refactorizations counts basis refactorizations across all node LPs.
	Refactorizations int
	// WarmStartHits counts node LPs re-solved from a parent basis.
	WarmStartHits int
	// NodesPruned counts nodes discarded by bound before their LP solve.
	NodesPruned int
	// RootObjective, RootDuals and RootX report the root LP relaxation when
	// its solve reached optimality: the relaxation objective, one dual
	// multiplier per model constraint (same units and sign convention as
	// Solution.RowDuals), and the fractional primal point. Callers use the
	// duals for Lagrangian certificates over supersets of the model and the
	// fractional point for rounding heuristics. Nil/zero when the root LP
	// did not finish.
	RootObjective float64
	RootDuals     []float64
	RootX         []float64
}

// bbNode is one open branch-and-bound node. fixes is the path's bound
// tightenings; warm is the parent's basis (shared, immutable), from which
// the node LP re-solves via dual simplex — branching only changes variable
// bounds, which preserves dual feasibility of the parent basis.
type bbNode struct {
	id         int64
	bound      float64 // parent LP objective: lower bound on this subtree
	fixes      []boundFix
	warm       *basisSnapshot
	parentObj  float64
	branchVar  int32 // -1 at the root
	branchFrac float64
	branchUp   bool
}

// nodeHeap is a best-bound priority queue with deterministic tie-breaking
// on node id.
type nodeHeap []*bbNode

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(a, b int) bool {
	if h[a].bound != h[b].bound {
		return h[a].bound < h[b].bound
	}
	return h[a].id < h[b].id
}
func (h nodeHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *nodeHeap) Push(x any)   { *h = append(*h, x.(*bbNode)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := len(old)
	nd := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return nd
}

type fracVal struct {
	v   int32
	val float64
}

// nodeResult is everything the serial reducer needs from one node LP solve.
type nodeResult struct {
	status   Status
	obj      float64
	fracs    []fracVal // fractional integer variables (ascending index)
	x        []float64 // rounded solution when integral, else nil
	floorX   []float64 // floor-heuristic incumbent candidate, else nil
	floorObj float64
	duals    []float64 // row duals (root node only)
	rootX    []float64 // fractional primal point (root node only)
	snap     *basisSnapshot
	iters    int
	refacts  int
	warm     bool
	// panicErr is set when the node LP solve panicked; the reducer surfaces
	// the first one in batch order and aborts the search.
	panicErr *fault.WorkerPanicError
}

// bbBatch is the dispatch batch size. It is intentionally independent of
// Parallelism: batch composition, reduce order, and therefore every search
// decision are identical no matter how many workers solve the LPs.
const bbBatch = 8

// SolveMIP minimizes m with integrality enforced on its integer variables,
// using warm-started parallel branch and bound: best-bound node selection,
// dual-simplex re-solves from the parent basis, pseudo-cost branching, and
// a deterministic serial reducer.
//
// SolveMIP never lets a panic escape: a panic inside a node LP solve (on any
// worker goroutine) or the reducer is recovered and returned as a
// *fault.WorkerPanicError.
func SolveMIP(m *Model, opts MIPOptions) (res *MIPResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fault.AsPanicError("lp.SolveMIP", r)
		}
	}()
	if m.NumVars() == 0 {
		return &MIPResult{Solution: Solution{Status: Optimal}}, nil
	}
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// stop folds Context and Deadline; deadline is the merged wall-clock
	// bound polled inside simplex iterations.
	stop := fault.NewStopper(opts.Context, opts.Deadline)
	deadline := stop.Deadline()

	p := compile(m)
	span := opts.Span.Child("lp.mip")
	span.SetInt("vars", int64(p.n))
	span.SetInt("rows", int64(p.m))
	span.SetInt("parallelism", int64(workers))

	var intVars []int32
	for j := 0; j < m.NumVars(); j++ {
		if m.Integer(j) {
			intVars = append(intVars, int32(j))
		}
	}

	solvers := make([]*sparseSolver, workers)
	xbufs := make([][]float64, workers)
	for i := range solvers {
		solvers[i] = newSparseSolver(p)
		xbufs[i] = make([]float64, p.n)
	}

	res = &MIPResult{
		Solution: Solution{Status: Infeasible},
		Bound:    math.Inf(-1),
	}
	res.Objective = math.Inf(1)

	if opts.Incumbent != nil {
		obj, xi, err := checkStart(m, opts.Incumbent)
		if err != nil {
			span.Discard()
			return nil, err
		}
		res.Solution = Solution{Status: Optimal, X: xi, Objective: obj}
	}

	// Pseudo-cost state: per-variable and global objective degradation per
	// unit of fraction, learned from child LP results in reduce order.
	nVars := m.NumVars()
	pcDownSum := make([]float64, nVars)
	pcDownCnt := make([]int, nVars)
	pcUpSum := make([]float64, nVars)
	pcUpCnt := make([]int, nVars)
	var totDownSum, totUpSum float64
	var totDownCnt, totUpCnt int

	pcEst := func(v int32, up bool) float64 {
		if up {
			if pcUpCnt[v] > 0 {
				return pcUpSum[v] / float64(pcUpCnt[v])
			}
			if totUpCnt > 0 {
				return totUpSum / float64(totUpCnt)
			}
		} else {
			if pcDownCnt[v] > 0 {
				return pcDownSum[v] / float64(pcDownCnt[v])
			}
			if totDownCnt > 0 {
				return totDownSum / float64(totDownCnt)
			}
		}
		return 1
	}

	// effObj is the pruning/gap threshold: the incumbent, or the external
	// cutoff while no incumbent exists.
	effObj := func() float64 {
		if !math.IsInf(res.Objective, 1) {
			return res.Objective
		}
		if opts.Cutoff != 0 {
			return opts.Cutoff
		}
		return math.Inf(1)
	}
	gapOK := func() bool {
		obj := effObj()
		if math.IsInf(obj, 1) {
			return false
		}
		if obj == 0 {
			return res.Bound >= -1e-9
		}
		return (obj-res.Bound)/math.Abs(obj) <= opts.Gap+1e-12
	}

	open := &nodeHeap{}
	heap.Init(open)
	root := &bbNode{id: 0, bound: math.Inf(-1), branchVar: -1}
	if len(opts.CrashAtUpper) > 0 {
		root.warm = crashBasis(p, opts.CrashAtUpper)
	}
	heap.Push(open, root)
	nextID := int64(1)

	batch := make([]*bbNode, 0, bbBatch)
	results := make([]nodeResult, bbBatch)
	unbounded := false

search:
	for open.Len() > 0 {
		if stop.Check() != fault.StopNone {
			// Deadline or cancellation: degrade gracefully — keep the
			// incumbent and the proven bound, flag DNF.
			res.DNF = true
			break
		}
		// The best open bound is the proven global lower bound.
		if lowest := (*open)[0].bound; lowest > res.Bound {
			res.Bound = math.Min(lowest, res.Objective)
		}
		if gapOK() {
			break
		}
		if opts.MaxNodes > 0 && res.Nodes >= opts.MaxNodes {
			res.DNF = true
			break
		}

		// Assemble a batch of the best open nodes, pruning dominated ones.
		batch = batch[:0]
		limit := bbBatch
		if opts.MaxNodes > 0 && opts.MaxNodes-res.Nodes < limit {
			limit = opts.MaxNodes - res.Nodes
		}
		cut := effObj()
		for len(batch) < limit && open.Len() > 0 {
			nd := heap.Pop(open).(*bbNode)
			if nd.bound >= cut-1e-12 {
				res.NodesPruned++
				continue
			}
			batch = append(batch, nd)
		}
		if len(batch) == 0 {
			continue
		}

		bsp := span.Child("lp.node_batch")
		bsp.SetInt("first_node", batch[0].id)
		bsp.SetInt("size", int64(len(batch)))

		// Solve the batch LPs. Each node is solved entirely by one
		// goroutine, so its floating-point path is independent of worker
		// count and scheduling.
		if workers == 1 || len(batch) == 1 {
			for i, nd := range batch {
				results[i] = solveNodeSafe(solvers[0], m, p, nd, deadline, intVars, xbufs[0])
			}
		} else {
			var cursor atomic.Int64
			var wg sync.WaitGroup
			nw := workers
			if nw > len(batch) {
				nw = len(batch)
			}
			for w := 0; w < nw; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for {
						i := cursor.Add(1) - 1
						if i >= int64(len(batch)) {
							return
						}
						results[i] = solveNodeSafe(solvers[w], m, p, batch[i], deadline, intVars, xbufs[w])
					}
				}(w)
			}
			wg.Wait()
		}

		// Surface the first panic in batch order before reducing: every
		// worker has already returned (drained cleanly), and a batch with a
		// crashed node must not feed incumbent or branching decisions.
		for i := range batch {
			if pe := results[i].panicErr; pe != nil {
				bsp.End()
				span.End()
				return nil, pe
			}
		}

		// Serial reduce, in batch order: all search state mutates here.
		for i, nd := range batch {
			r := &results[i]
			res.Nodes++
			res.SimplexIters += r.iters
			res.Refactorizations += r.refacts
			if r.warm {
				res.WarmStartHits++
			}
			switch r.status {
			case Infeasible:
				continue
			case Unbounded:
				unbounded = true
				bsp.End()
				break search
			case IterationLimit:
				res.DNF = true
				bsp.End()
				break search
			}

			// Pseudo-cost update from the parent's branching decision.
			if nd.branchVar >= 0 {
				delta := r.obj - nd.parentObj
				if delta < 0 {
					delta = 0
				}
				denom := nd.branchFrac
				if nd.branchUp {
					denom = 1 - nd.branchFrac
				}
				if denom < 1e-6 {
					denom = 1e-6
				}
				unit := delta / denom
				if nd.branchUp {
					pcUpSum[nd.branchVar] += unit
					pcUpCnt[nd.branchVar]++
					totUpSum += unit
					totUpCnt++
				} else {
					pcDownSum[nd.branchVar] += unit
					pcDownCnt[nd.branchVar]++
					totDownSum += unit
					totDownCnt++
				}
			}

			if nd.id == 0 && r.duals != nil {
				res.RootObjective = r.obj
				res.RootDuals = r.duals
				res.RootX = r.rootX
			}

			// Incumbent candidates: an integral relaxation, or the floor
			// heuristic (flooring integer variables often stays feasible
			// for covering-free problems like CoPhy's knapsack rows).
			if r.x != nil && r.obj < res.Objective-1e-12 {
				res.Solution = Solution{Status: Optimal, X: r.x, Objective: r.obj}
			}
			if r.floorX != nil && r.floorObj < res.Objective-1e-12 {
				res.Solution = Solution{Status: Optimal, X: r.floorX, Objective: r.floorObj}
			}

			if len(r.fracs) == 0 || r.obj >= effObj()-1e-12 {
				continue // closed: integral, or dominated after solving
			}

			// Pseudo-cost branching: maximize the product of estimated
			// objective degradations; ties to the smallest variable index.
			best := r.fracs[0]
			bestScore := math.Inf(-1)
			for _, fv := range r.fracs {
				f := fv.val - math.Floor(fv.val)
				down := pcEst(fv.v, false) * f
				up := pcEst(fv.v, true) * (1 - f)
				if down < 1e-6 {
					down = 1e-6
				}
				if up < 1e-6 {
					up = 1e-6
				}
				if score := down * up; score > bestScore {
					bestScore = score
					best = fv
				}
			}
			f := best.val - math.Floor(best.val)

			// Effective bounds of the branch variable on this path.
			blo, bup := p.lo[best.v], p.up[best.v]
			for _, fx := range nd.fixes {
				if fx.v == best.v {
					blo, bup = fx.lo, fx.hi
				}
			}
			downFixes := make([]boundFix, len(nd.fixes), len(nd.fixes)+1)
			copy(downFixes, nd.fixes)
			downFixes = append(downFixes, boundFix{best.v, blo, math.Floor(best.val)})
			upFixes := make([]boundFix, len(nd.fixes), len(nd.fixes)+1)
			copy(upFixes, nd.fixes)
			upFixes = append(upFixes, boundFix{best.v, math.Ceil(best.val), bup})

			heap.Push(open, &bbNode{
				id: nextID, bound: r.obj, fixes: downFixes, warm: r.snap,
				parentObj: r.obj, branchVar: best.v, branchFrac: f,
			})
			heap.Push(open, &bbNode{
				id: nextID + 1, bound: r.obj, fixes: upFixes, warm: r.snap,
				parentObj: r.obj, branchVar: best.v, branchFrac: f, branchUp: true,
			})
			nextID += 2
		}
		bsp.SetFloat("bound", res.Bound)
		bsp.SetInt("open", int64(open.Len()))
		bsp.End()
	}

	if unbounded {
		res.Solution = Solution{Status: Unbounded}
	}
	if open.Len() == 0 && !res.DNF && !unbounded {
		// Search exhausted: the incumbent (if any) is optimal.
		if !math.IsInf(res.Objective, 1) {
			res.Bound = res.Objective
		}
	}
	if !math.IsInf(res.Objective, 1) {
		res.Gap = 0
		if res.Objective != 0 {
			res.Gap = (res.Objective - res.Bound) / math.Abs(res.Objective)
		}
		if res.Gap < 0 {
			res.Gap = 0
		}
	} else {
		res.Gap = math.Inf(1)
	}
	res.Iterations = res.SimplexIters

	span.SetInt("nodes", int64(res.Nodes))
	span.SetInt("nodes_pruned", int64(res.NodesPruned))
	span.SetInt("simplex_iters", int64(res.SimplexIters))
	span.SetInt("refactorizations", int64(res.Refactorizations))
	span.SetInt("warm_start_hits", int64(res.WarmStartHits))
	span.SetBool("dnf", res.DNF)
	span.End()

	reg := telemetry.Default()
	reg.Counter("indexsel_lp_simplex_iterations_total",
		"Simplex iterations across all branch-and-bound node LPs.").Add(int64(res.SimplexIters))
	reg.Counter("indexsel_lp_refactorizations_total",
		"Basis refactorizations across all node LPs.").Add(int64(res.Refactorizations))
	reg.Counter("indexsel_lp_warm_start_hits_total",
		"Node LPs re-solved from a parent basis via dual simplex.").Add(int64(res.WarmStartHits))
	reg.Counter("indexsel_lp_nodes_pruned_total",
		"Branch-and-bound nodes discarded by bound before their LP solve.").Add(int64(res.NodesPruned))

	return res, nil
}

// solveNodeSafe runs solveNode with panic isolation: a panicking node solve
// on a worker goroutine is converted into a nodeResult carrying the
// structured error instead of crashing the process.
func solveNodeSafe(s *sparseSolver, m *Model, p *prob, nd *bbNode, deadline time.Time, intVars []int32, xbuf []float64) (r nodeResult) {
	defer func() {
		if rec := recover(); rec != nil {
			r = nodeResult{panicErr: fault.AsPanicError("lp.solveNode", rec)}
		}
	}()
	return solveNode(s, m, p, nd, deadline, intVars, xbuf)
}

// solveNode solves one node LP on a worker-owned solver. It is the only
// code that runs concurrently; everything it returns is reduced serially.
func solveNode(s *sparseSolver, m *Model, p *prob, nd *bbNode, deadline time.Time, intVars []int32, xbuf []float64) nodeResult {
	r0 := s.refacts
	s.reset(nd.fixes, nd.warm)
	st := s.optimize(deadline)
	// The root's crash basis is a starting hint, not a parent re-solve, so it
	// does not count as a warm-start hit.
	r := nodeResult{status: st, iters: s.iters, refacts: s.refacts - r0, warm: nd.warm != nil && nd.id != 0}
	if st != Optimal {
		return r
	}
	r.obj = s.objValue()
	s.primalX(xbuf)
	if nd.id == 0 {
		r.duals = s.rowDuals()
		r.rootX = append([]float64(nil), xbuf...)
	}
	for _, v := range intVars {
		xv := xbuf[v]
		f := xv - math.Floor(xv)
		if f > 1e-6 && f < 1-1e-6 {
			r.fracs = append(r.fracs, fracVal{v, xv})
		}
	}
	if len(r.fracs) == 0 {
		x := make([]float64, len(xbuf))
		copy(x, xbuf)
		for _, v := range intVars {
			x[v] = math.Round(x[v])
		}
		r.x = x
		return r
	}
	if obj, fx, ok := floorFeasible(m, xbuf); ok {
		r.floorObj, r.floorX = obj, fx
	}
	r.snap = s.snapshot()
	return r
}

// floorFeasible floors the integer components of x and reports the resulting
// point's objective if it satisfies every model constraint.
func floorFeasible(m *Model, x []float64) (float64, []float64, bool) {
	rounded := append([]float64(nil), x[:m.NumVars()]...)
	for i := range rounded {
		if m.Integer(i) {
			rounded[i] = math.Floor(rounded[i] + 1e-9)
		}
	}
	for _, c := range m.cons {
		var lhs float64
		for k, j := range c.Cols {
			lhs += c.Vals[k] * rounded[j]
		}
		switch c.Sense {
		case LE:
			if lhs > c.RHS+1e-9 {
				return 0, nil, false
			}
		case GE:
			if lhs < c.RHS-1e-9 {
				return 0, nil, false
			}
		case EQ:
			if math.Abs(lhs-c.RHS) > 1e-9 {
				return 0, nil, false
			}
		}
	}
	var obj float64
	for i, v := range rounded {
		obj += m.obj[i] * v
	}
	return obj, rounded, true
}

// checkStart validates a caller-supplied starting incumbent: right length,
// within variable bounds, integral on integer variables, and satisfying every
// constraint. It returns the point's objective and a defensive copy with the
// integer components snapped to their nearest integer.
func checkStart(m *Model, x []float64) (float64, []float64, error) {
	if len(x) != m.NumVars() {
		return 0, nil, fmt.Errorf("lp: incumbent has %d entries, model has %d variables", len(x), m.NumVars())
	}
	xi := append([]float64(nil), x...)
	for j, v := range xi {
		if m.Integer(j) {
			r := math.Round(v)
			if math.Abs(v-r) > 1e-6 {
				return 0, nil, fmt.Errorf("lp: incumbent is fractional on integer variable %s (%g)", m.names[j], v)
			}
			xi[j] = r
		}
		if xi[j] < -1e-9 || xi[j] > m.upper[j]+1e-9 {
			return 0, nil, fmt.Errorf("lp: incumbent violates bounds of %s (%g not in [0, %g])", m.names[j], xi[j], m.upper[j])
		}
	}
	for ci, c := range m.cons {
		var lhs float64
		for k, j := range c.Cols {
			lhs += c.Vals[k] * xi[j]
		}
		tol := 1e-6 + 1e-9*math.Abs(c.RHS)
		ok := true
		switch c.Sense {
		case LE:
			ok = lhs <= c.RHS+tol
		case GE:
			ok = lhs >= c.RHS-tol
		case EQ:
			ok = math.Abs(lhs-c.RHS) <= tol
		}
		if !ok {
			return 0, nil, fmt.Errorf("lp: incumbent violates constraint %d (%g %v %g)", ci, lhs, c.Sense, c.RHS)
		}
	}
	var obj float64
	for j, v := range xi {
		obj += m.obj[j] * v
	}
	return obj, xi, nil
}

// RoundedVars returns the integer-variable indices of x whose value rounds
// to 1 (within tolerance), sorted ascending — a convenience for extracting
// 0/1 selections from MIP solutions.
func RoundedVars(m *Model, x []float64) []int {
	var on []int
	for i := 0; i < m.NumVars(); i++ {
		if m.Integer(i) && x[i] > 0.5 {
			on = append(on, i)
		}
	}
	sort.Ints(on)
	return on
}
