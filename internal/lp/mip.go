package lp

import (
	"math"
	"sort"
	"time"
)

// MIPOptions controls branch and bound.
type MIPOptions struct {
	// Gap is the relative optimality gap at which the search stops
	// (e.g. 0.05 mirrors the paper's mipgap=0.05 CPLEX setting). Zero means
	// solve to proven optimality.
	Gap float64
	// Deadline aborts the search; the incumbent (if any) is returned with
	// DNF set. Zero means no deadline.
	Deadline time.Time
	// MaxNodes bounds the number of explored nodes; 0 means unlimited.
	MaxNodes int
}

// MIPResult is the outcome of SolveMIP.
type MIPResult struct {
	Solution
	// Bound is the best proven lower bound on the optimum.
	Bound float64
	// Gap is the final relative gap between incumbent and bound.
	Gap float64
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int
	// DNF reports that the deadline or node limit was hit before the gap
	// was proven ("did not finish", Table I).
	DNF bool
}

// SolveMIP minimizes m with integrality enforced on its integer variables,
// using LP-relaxation-based branch and bound (best-first on node bounds,
// branching on the most fractional integer variable).
func SolveMIP(m *Model, opts MIPOptions) (*MIPResult, error) {
	root, err := solveWithExtra(m, nil, opts.Deadline)
	if err != nil {
		return nil, err
	}
	if root.Status != Optimal {
		res := &MIPResult{Solution: *root}
		if root.Status == IterationLimit && !opts.Deadline.IsZero() && time.Now().After(opts.Deadline) {
			res.DNF = true
		}
		return res, nil
	}

	type node struct {
		extra []Constraint
		bound float64
	}
	res := &MIPResult{
		Solution: Solution{Status: Infeasible},
		Bound:    root.Objective,
	}
	res.Objective = math.Inf(1)
	iters := root.Iterations

	open := []node{{bound: root.Objective}}
	popBest := func() node {
		best := 0
		for i := range open {
			if open[i].bound < open[best].bound {
				best = i
			}
		}
		n := open[best]
		open[best] = open[len(open)-1]
		open = open[:len(open)-1]
		return n
	}

	gapOK := func() bool {
		if math.IsInf(res.Objective, 1) {
			return false
		}
		if res.Objective == 0 {
			return res.Bound >= -1e-9
		}
		return (res.Objective-res.Bound)/math.Abs(res.Objective) <= opts.Gap+1e-12
	}

	for len(open) > 0 {
		if !opts.Deadline.IsZero() && time.Now().After(opts.Deadline) {
			res.DNF = true
			break
		}
		if opts.MaxNodes > 0 && res.Nodes >= opts.MaxNodes {
			res.DNF = true
			break
		}
		// The best open bound is the proven global lower bound.
		lowest := math.Inf(1)
		for i := range open {
			if open[i].bound < lowest {
				lowest = open[i].bound
			}
		}
		if lowest > res.Bound {
			res.Bound = math.Min(lowest, res.Objective)
		}
		if gapOK() {
			break
		}

		nd := popBest()
		if nd.bound >= res.Objective-1e-12 {
			continue // dominated by incumbent
		}
		sol, err := solveWithExtra(m, nd.extra, opts.Deadline)
		if err != nil {
			return nil, err
		}
		if sol.Status == IterationLimit && !opts.Deadline.IsZero() && time.Now().After(opts.Deadline) {
			res.DNF = true
			break
		}
		res.Nodes++
		iters += sol.Iterations
		if sol.Status != Optimal || sol.Objective >= res.Objective-1e-12 {
			continue
		}
		// Rounding heuristic: flooring integer variables often yields a
		// feasible incumbent (always, for covering-free problems like
		// knapsacks), enabling pruning long before a node LP happens to come
		// out integral.
		if obj, x, ok := floorFeasible(m, sol.X); ok && obj < res.Objective-1e-12 {
			res.Solution = Solution{Status: Optimal, X: x, Objective: obj}
		}
		// Find the most fractional integer variable.
		branch := -1
		worst := 1e-6
		for i := 0; i < m.NumVars(); i++ {
			if !m.Integer(i) {
				continue
			}
			f := sol.X[i] - math.Floor(sol.X[i])
			if d := math.Min(f, 1-f); d > worst {
				worst, branch = d, i
			}
		}
		if branch == -1 {
			// Integral: new incumbent.
			res.Solution = *sol
			res.Solution.Iterations = iters
			continue
		}
		v := sol.X[branch]
		down := append(append([]Constraint(nil), nd.extra...),
			Constraint{Coeffs: map[int]float64{branch: 1}, Sense: LE, RHS: math.Floor(v)})
		up := append(append([]Constraint(nil), nd.extra...),
			Constraint{Coeffs: map[int]float64{branch: 1}, Sense: GE, RHS: math.Ceil(v)})
		open = append(open, node{down, sol.Objective}, node{up, sol.Objective})
	}

	if len(open) == 0 && !res.DNF {
		// Search exhausted: the incumbent (if any) is optimal.
		if !math.IsInf(res.Objective, 1) {
			res.Bound = res.Objective
		}
	}
	if !math.IsInf(res.Objective, 1) {
		res.Gap = 0
		if res.Objective != 0 {
			res.Gap = (res.Objective - res.Bound) / math.Abs(res.Objective)
		}
		if res.Gap < 0 {
			res.Gap = 0
		}
	} else {
		res.Gap = math.Inf(1)
	}
	res.Iterations = iters
	return res, nil
}

// floorFeasible floors the integer components of x and reports the resulting
// point's objective if it satisfies every model constraint.
func floorFeasible(m *Model, x []float64) (float64, []float64, bool) {
	rounded := append([]float64(nil), x[:m.NumVars()]...)
	for i := range rounded {
		if m.Integer(i) {
			rounded[i] = math.Floor(rounded[i] + 1e-9)
		}
	}
	for _, c := range m.cons {
		var lhs float64
		for j, v := range c.Coeffs {
			lhs += v * rounded[j]
		}
		switch c.Sense {
		case LE:
			if lhs > c.RHS+1e-9 {
				return 0, nil, false
			}
		case GE:
			if lhs < c.RHS-1e-9 {
				return 0, nil, false
			}
		case EQ:
			if math.Abs(lhs-c.RHS) > 1e-9 {
				return 0, nil, false
			}
		}
	}
	var obj float64
	for i, v := range rounded {
		obj += m.obj[i] * v
	}
	return obj, rounded, true
}

// RoundedVars returns the integer-variable indices of x whose value rounds
// to 1 (within tolerance), sorted ascending — a convenience for extracting
// 0/1 selections from MIP solutions.
func RoundedVars(m *Model, x []float64) []int {
	var on []int
	for i := 0; i < m.NumVars(); i++ {
		if m.Integer(i) && x[i] > 0.5 {
			on = append(on, i)
		}
	}
	sort.Ints(on)
	return on
}
