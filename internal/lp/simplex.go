package lp

import (
	"math"
	"sort"
	"time"
)

// deadlineEvery is how often (in iterations) the simplex loops poll the
// wall clock, so a deadline interrupts a single long solve and not only
// node boundaries.
const deadlineEvery = 128

func (s *sparseSolver) expired(deadline time.Time) bool {
	return s.iters%deadlineEvery == 0 && !deadline.IsZero() && time.Now().After(deadline)
}

// maxIters bounds a single solve as a safety net against cycling bugs;
// normal termination comes from optimality, Bland's rule, or the deadline.
func (s *sparseSolver) maxIters() int {
	return 20000 + 50*(s.p.m+s.p.n)
}

// dualFeasible reports whether the maintained reduced costs satisfy the
// nonbasic sign conditions of a minimization: at-lower d ≥ 0, at-upper
// d ≤ 0 (fixed columns are exempt).
func (s *sparseSolver) dualFeasible() bool {
	N := s.p.n + s.p.m
	for j := 0; j < N; j++ {
		if s.lo[j] == s.up[j] {
			continue
		}
		switch s.state[j] {
		case atLower:
			if s.d[j] < -s.dualTol {
				return false
			}
		case atUpper:
			if s.d[j] > s.dualTol {
				return false
			}
		}
	}
	return true
}

// buildPivotRow computes alpha = (eᵣ)ᵀ B⁻¹ N over all columns, via BTRAN
// and a row-wise (CSR) gather. Logical column n+i contributes rho_i.
func (s *sparseSolver) buildPivotRow(r int32) {
	s.btranRow(r)
	s.alphaTch = s.alphaTch[:0]
	p := s.p
	for _, i := range s.rhoTch {
		ri := s.rhoV[i]
		if ri == 0 {
			continue
		}
		for idx := p.rowPtr[i]; idx < p.rowPtr[i+1]; idx++ {
			j := p.rowCol[idx]
			if !s.alphaMark[j] {
				s.alphaMark[j] = true
				s.alphaTch = append(s.alphaTch, j)
			}
			s.alpha[j] += p.rowVal[idx] * ri
		}
		lj := int32(p.n) + i
		if !s.alphaMark[lj] {
			s.alphaMark[lj] = true
			s.alphaTch = append(s.alphaTch, lj)
		}
		s.alpha[lj] += ri
	}
	s.clearRho()
}

func (s *sparseSolver) clearAlpha() {
	for _, j := range s.alphaTch {
		s.alpha[j] = 0
		s.alphaMark[j] = false
	}
	s.alphaTch = s.alphaTch[:0]
}

// noteStep updates the anti-cycling stall counter: a run of stallLimit
// consecutive (near-)degenerate pivots switches pricing to Bland's rule,
// which guarantees finite termination; any productive step switches back
// to Dantzig pricing.
func (s *sparseSolver) noteStep(degenerate bool) {
	if degenerate {
		s.stall++
		if s.stall >= stallLimit {
			s.bland = true
		}
	} else {
		s.stall = 0
		s.bland = false
	}
}

func (s *sparseSolver) maybeRefactor() {
	if s.sinceRefact >= refactorEvery {
		if !s.refactorize() {
			// Numerically singular mid-solve: restart from the slack basis.
			s.installBasis(nil)
		}
	}
}

// Partial-pricing parameters: the primal shortlist keeps the priceCap most
// attractive columns from the last full scan and is refreshed when it
// shrinks below priceRefill, so the per-iteration pricing cost is bounded by
// the shortlist size instead of the column count.
const (
	priceCap    = 256
	priceRefill = 32
)

// priceScore is the primal attractiveness of nonbasic column j: the rate of
// objective decrease per unit of movement off its bound (0 when basic,
// fixed, or moving would not improve).
func (s *sparseSolver) priceScore(j int32) float64 {
	if s.state[j] == isBasic || s.lo[j] == s.up[j] {
		return 0
	}
	if s.state[j] == atLower {
		return -s.d[j]
	}
	return s.d[j]
}

// priceFromList picks the best column from the shortlist by current reduced
// costs, compacting out entries that are no longer attractive. It returns
// (-1, 0) when the list holds nothing attractive.
func (s *sparseSolver) priceFromList() (int32, float64) {
	enter := int32(-1)
	best := s.dualTol
	w := 0
	for _, j := range s.priceList {
		sc := s.priceScore(j)
		if sc <= s.dualTol {
			continue
		}
		s.priceList[w] = j
		w++
		if sc > best {
			best = sc
			enter = j
		}
	}
	s.priceList = s.priceList[:w]
	if enter == -1 {
		return -1, 0
	}
	if s.state[enter] == atLower {
		return enter, 1
	}
	return enter, -1
}

// refreshPriceList rebuilds the shortlist from a full scan, keeping the
// priceCap best columns (ties to the lower index, keeping the scan
// deterministic).
func (s *sparseSolver) refreshPriceList() {
	N := int32(s.p.n + s.p.m)
	s.priceList = s.priceList[:0]
	s.priceScores = s.priceScores[:0]
	for j := int32(0); j < N; j++ {
		if sc := s.priceScore(j); sc > s.dualTol {
			s.priceList = append(s.priceList, j)
			s.priceScores = append(s.priceScores, sc)
		}
	}
	if len(s.priceList) > priceCap {
		sort.Sort(priceSorter{s.priceList, s.priceScores})
		s.priceList = s.priceList[:priceCap]
	}
}

// priceSorter orders shortlist candidates by descending score, ties to the
// lower column index.
type priceSorter struct {
	list  []int32
	score []float64
}

func (p priceSorter) Len() int { return len(p.list) }
func (p priceSorter) Less(a, b int) bool {
	if p.score[a] != p.score[b] {
		return p.score[a] > p.score[b]
	}
	return p.list[a] < p.list[b]
}
func (p priceSorter) Swap(a, b int) {
	p.list[a], p.list[b] = p.list[b], p.list[a]
	p.score[a], p.score[b] = p.score[b], p.score[a]
}

// primal runs bounded primal simplex iterations (partial Dantzig pricing on
// the maintained reduced costs, ratio test with bound flips) until
// optimality, unboundedness, or a limit. It assumes the current basis is
// primal feasible.
func (s *sparseSolver) primal(deadline time.Time) Status {
	p := s.p
	N := p.n + p.m
	limit := s.maxIters()
	for {
		if s.iters >= limit {
			return IterationLimit
		}
		if s.expired(deadline) {
			return IterationLimit
		}

		// Pricing: Bland's rule scans everything (anti-cycling needs the
		// lowest attractive index); Dantzig pricing runs over the partial
		// shortlist, falling back to a full refresh scan. Optimality is only
		// ever declared after a clean full scan.
		enter := int32(-1)
		var t float64 // +1 entering rises from lower, -1 falls from upper
		if s.bland {
			for j := int32(0); j < int32(N); j++ {
				if s.priceScore(j) > s.dualTol {
					enter = j
					break
				}
			}
		} else {
			enter, t = s.priceFromList()
			if enter == -1 || len(s.priceList) < priceRefill {
				s.refreshPriceList()
				enter, t = s.priceFromList()
			}
		}
		if enter == -1 {
			return Optimal
		}
		if s.bland {
			if s.state[enter] == atLower {
				t = 1
			} else {
				t = -1
			}
		}

		s.scatterColumn(enter)
		s.ftranCol()

		// Ratio test over the FTRAN support.
		rowTheta := math.Inf(1)
		leave := int32(-1)
		var pivA float64
		var leaveToUpper bool
		for _, r := range s.colTch {
			a := s.colV[r]
			ta := t * a
			br := s.basic[r]
			var lim float64
			var toUpper bool
			if ta > pivTol {
				if math.IsInf(s.lo[br], -1) {
					continue
				}
				lim = (s.xB[r] - s.lo[br]) / ta
			} else if ta < -pivTol {
				if math.IsInf(s.up[br], 1) {
					continue
				}
				lim = (s.up[br] - s.xB[r]) / (-ta)
				toUpper = true
			} else {
				continue
			}
			if lim < 0 {
				lim = 0 // tolerance noise on a slightly infeasible row
			}
			if leave == -1 || lim < rowTheta-1e-9 ||
				(lim <= rowTheta+1e-9 && math.Abs(a) > math.Abs(pivA)) {
				if lim < rowTheta {
					rowTheta = lim
				}
				leave = r
				pivA = a
				leaveToUpper = toUpper
			}
		}

		boundRange := s.up[enter] - s.lo[enter]
		if leave == -1 && math.IsInf(boundRange, 1) {
			return Unbounded
		}
		if boundRange <= rowTheta {
			// Bound flip: the entering variable crosses its own range
			// before any basic variable hits a bound. No basis change.
			for _, r := range s.colTch {
				s.xB[r] -= t * s.colV[r] * boundRange
			}
			if s.state[enter] == atLower {
				s.state[enter] = atUpper
			} else {
				s.state[enter] = atLower
			}
			s.boundFlips++
			s.clearColumn()
			s.iters++
			s.noteStep(boundRange <= degenTol)
			continue
		}

		theta := rowTheta
		for _, i := range s.colTch {
			s.xB[i] -= t * s.colV[i] * theta
		}
		enterVal := s.nonbasicValue(enter) + t*theta

		// Dual update from the pivot row.
		s.buildPivotRow(leave)
		thetaD := s.d[enter] / s.colV[leave]
		for _, j := range s.alphaTch {
			if s.state[j] == isBasic || j == enter {
				continue
			}
			s.d[j] -= thetaD * s.alpha[j]
		}
		lcol := s.basic[leave]
		s.d[lcol] = -thetaD
		s.d[enter] = 0
		s.clearAlpha()

		s.etas.push(s.colV, s.colTch, leave)
		if leaveToUpper {
			s.state[lcol] = atUpper
		} else {
			s.state[lcol] = atLower
		}
		s.pos[lcol] = -1
		s.basic[leave] = enter
		s.state[enter] = isBasic
		s.pos[enter] = leave
		s.xB[leave] = enterVal
		s.clearColumn()

		s.iters++
		s.sinceRefact++
		s.noteStep(theta <= degenTol)
		s.maybeRefactor()
	}
}

// dual runs bounded dual simplex iterations until primal feasibility
// (returned as Optimal — the caller decides whether reduced costs are the
// real ones), proven infeasibility, or a limit. It assumes the maintained
// reduced costs are dual feasible; branch-and-bound relies on this since
// bound tightening preserves dual feasibility of the parent basis.
func (s *sparseSolver) dual(deadline time.Time) Status {
	limit := s.maxIters()
	for {
		if s.iters >= limit {
			return IterationLimit
		}
		if s.expired(deadline) {
			return IterationLimit
		}

		// Leaving row: lazily validate the candidate list, pick the most
		// violated row (ties to the smallest row index).
		r := int32(-1)
		bestInf := s.feasTol
		w := 0
		for _, i := range s.infeas {
			inf := s.rowInfeasibility(i)
			if inf <= s.feasTol {
				s.inInfeas[i] = false
				continue
			}
			s.infeas[w] = i
			w++
			if inf > bestInf {
				bestInf = inf
				r = i
			}
		}
		s.infeas = s.infeas[:w]
		if r == -1 {
			return Optimal // primal feasible
		}

		lcol := s.basic[r]
		var sigma, target float64
		var leaveState int8
		if s.xB[r] < s.lo[lcol] {
			sigma, target, leaveState = -1, s.lo[lcol], atLower
		} else {
			sigma, target, leaveState = 1, s.up[lcol], atUpper
		}

		s.buildPivotRow(r)

		// Entering column: dual ratio test over the pivot-row support.
		q := int32(-1)
		bestRatio := math.Inf(1)
		var pivAr float64
		for _, j := range s.alphaTch {
			if s.state[j] == isBasic || s.lo[j] == s.up[j] {
				continue
			}
			ar := sigma * s.alpha[j]
			if s.state[j] == atLower {
				if ar <= pivTol {
					continue
				}
			} else if ar >= -pivTol {
				continue
			}
			ratio := s.d[j] / ar
			if ratio < 0 {
				ratio = 0
			}
			if q == -1 || ratio < bestRatio-1e-9 {
				bestRatio = ratio
				q = j
				pivAr = ar
				continue
			}
			if ratio <= bestRatio+1e-9 {
				if ratio < bestRatio {
					bestRatio = ratio
				}
				if s.bland {
					if j < q {
						q = j
						pivAr = ar
					}
				} else if math.Abs(ar) > math.Abs(pivAr) {
					q = j
					pivAr = ar
				}
			}
		}
		if q == -1 {
			s.clearAlpha()
			return Infeasible // a violated row with no way out
		}

		thetaD := s.d[q] / s.alpha[q] // signed dual step
		for _, j := range s.alphaTch {
			if s.state[j] == isBasic || j == q {
				continue
			}
			s.d[j] -= thetaD * s.alpha[j]
		}
		s.d[lcol] = -thetaD
		s.d[q] = 0
		s.clearAlpha()

		s.scatterColumn(q)
		s.ftranCol()
		arq := s.colV[r]
		if math.Abs(arq) < pivTol*1e-2 {
			// BTRAN and FTRAN views of the pivot disagree badly: the
			// factorization has drifted. Rebuild and retry the iteration.
			s.clearColumn()
			if !s.refactorize() {
				s.installBasis(nil)
			}
			s.iters++
			continue
		}
		delta := (s.xB[r] - target) / arq
		for _, i := range s.colTch {
			if i != r {
				s.xB[i] -= s.colV[i] * delta
				s.markInfeasible(i)
			}
		}
		enterVal := s.nonbasicValue(q) + delta

		s.etas.push(s.colV, s.colTch, r)
		s.state[lcol] = leaveState
		s.pos[lcol] = -1
		s.basic[r] = q
		s.state[q] = isBasic
		s.pos[q] = r
		s.xB[r] = enterVal
		s.markInfeasible(r) // the entering value may violate q's own bounds
		s.clearColumn()

		s.iters++
		s.sinceRefact++
		s.noteStep(math.Abs(thetaD) <= degenTol)
		s.maybeRefactor()
	}
}

// optimize drives the phase logic: dual simplex toward primal feasibility
// when the start is dual feasible (CoPhy's nonnegative costs make the slack
// basis dual feasible, and branching bound changes keep warm bases dual
// feasible), a zero-cost dual phase 1 otherwise, then primal simplex to
// optimality.
func (s *sparseSolver) optimize(deadline time.Time) Status {
	for pass := 0; pass < 16; pass++ {
		if len(s.infeas) > 0 {
			if s.dualFeasible() {
				if st := s.dual(deadline); st != Optimal {
					return st
				}
			} else {
				// Phase 1: any basis is dual feasible for zero costs, so
				// dual simplex reaches primal feasibility or proves
				// infeasibility; then restore the true reduced costs.
				for j := range s.d {
					s.d[j] = 0
				}
				if st := s.dual(deadline); st != Optimal {
					return st
				}
				s.recomputeDuals(s.p.c)
			}
		}
		if st := s.primal(deadline); st != Optimal {
			return st
		}
		// Refactorization drift can surface primal infeasibility the primal
		// loop does not watch for; validate before declaring optimality.
		s.rebuildInfeasible()
		if len(s.infeas) == 0 {
			return Optimal
		}
	}
	return IterationLimit
}

// primalX writes the current structural variable values into x.
func (s *sparseSolver) primalX(x []float64) {
	for j := 0; j < s.p.n; j++ {
		if s.state[j] == isBasic {
			x[j] = s.xB[s.pos[j]]
		} else {
			x[j] = s.nonbasicValue(int32(j))
		}
	}
}

// objValue evaluates the objective at the current point.
func (s *sparseSolver) objValue() float64 {
	var v float64
	for j, c := range s.p.c {
		if c == 0 {
			continue
		}
		if s.state[j] == isBasic {
			v += c * s.xB[s.pos[j]]
		} else {
			v += c * s.nonbasicValue(int32(j))
		}
	}
	return v
}

// solve runs optimize and packages a Solution. X is populated for Optimal
// and IterationLimit (the latter so callers can inspect the partial point).
func (s *sparseSolver) solve(deadline time.Time) *Solution {
	st := s.optimize(deadline)
	sol := &Solution{Status: st, Iterations: s.iters}
	if st == Optimal || st == IterationLimit {
		x := make([]float64, s.p.n)
		s.primalX(x)
		sol.X = x
		sol.Objective = s.objValue()
	}
	if st == Optimal {
		sol.RowDuals = s.rowDuals()
	}
	return sol
}

// rowDuals extracts the dual multipliers of the current (optimal) basis in
// model row units. The slack of row i is the unit column e_i with zero cost,
// so its reduced cost is −y_i in scaled row units; undoing the compile-time
// row scaling reports duals in model units.
func (s *sparseSolver) rowDuals() []float64 {
	y := make([]float64, s.p.m)
	for i := 0; i < s.p.m; i++ {
		y[i] = -s.d[s.p.n+i] * s.p.rowScale[i]
	}
	return y
}
