package lp

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// TestSimplexHandSolved: minimize -3x - 5y s.t. x <= 4, 2y <= 12,
// 3x + 2y <= 18 (the classic Wyndor problem); optimum -36 at (2, 6).
func TestSimplexHandSolved(t *testing.T) {
	m := NewModel()
	x := m.AddVar(-3, "x", math.Inf(1), false)
	y := m.AddVar(-5, "y", math.Inf(1), false)
	m.AddConstraint(map[int]float64{x: 1}, LE, 4)
	m.AddConstraint(map[int]float64{y: 2}, LE, 12)
	m.AddConstraint(map[int]float64{x: 3, y: 2}, LE, 18)
	sol, err := SolveLP(m)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !approx(sol.Objective, -36, 1e-7) {
		t.Errorf("objective = %v, want -36", sol.Objective)
	}
	if !approx(sol.X[x], 2, 1e-7) || !approx(sol.X[y], 6, 1e-7) {
		t.Errorf("solution = (%v, %v), want (2, 6)", sol.X[x], sol.X[y])
	}
}

// TestSimplexGEAndEQ: minimize 2x + 3y s.t. x + y >= 4, x = 1 -> (1,3), obj 11.
func TestSimplexGEAndEQ(t *testing.T) {
	m := NewModel()
	x := m.AddVar(2, "x", math.Inf(1), false)
	y := m.AddVar(3, "y", math.Inf(1), false)
	m.AddConstraint(map[int]float64{x: 1, y: 1}, GE, 4)
	m.AddConstraint(map[int]float64{x: 1}, EQ, 1)
	sol, err := SolveLP(m)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approx(sol.Objective, 11, 1e-7) {
		t.Fatalf("got %v obj %v, want optimal 11", sol.Status, sol.Objective)
	}
}

func TestSimplexNegativeRHS(t *testing.T) {
	// x - y <= -2 with min x + y: optimum at (0, 2), obj 2.
	m := NewModel()
	x := m.AddVar(1, "x", math.Inf(1), false)
	y := m.AddVar(1, "y", math.Inf(1), false)
	m.AddConstraint(map[int]float64{x: 1, y: -1}, LE, -2)
	sol, err := SolveLP(m)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approx(sol.Objective, 2, 1e-7) {
		t.Fatalf("got %v obj %v, want optimal 2", sol.Status, sol.Objective)
	}
}

func TestSimplexInfeasible(t *testing.T) {
	m := NewModel()
	x := m.AddVar(1, "x", math.Inf(1), false)
	m.AddConstraint(map[int]float64{x: 1}, GE, 5)
	m.AddConstraint(map[int]float64{x: 1}, LE, 3)
	sol, err := SolveLP(m)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestSimplexUnbounded(t *testing.T) {
	m := NewModel()
	x := m.AddVar(-1, "x", math.Inf(1), false)
	y := m.AddVar(0, "y", math.Inf(1), false)
	m.AddConstraint(map[int]float64{x: 1, y: -1}, LE, 1)
	sol, err := SolveLP(m)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestSimplexUpperBounds(t *testing.T) {
	// min -x - y with x <= 0.7, y <= 0.4 as variable bounds.
	m := NewModel()
	x := m.AddVar(-1, "x", 0.7, false)
	y := m.AddVar(-1, "y", 0.4, false)
	sol, err := SolveLP(m)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approx(sol.Objective, -1.1, 1e-7) {
		t.Fatalf("got %v obj %v, want optimal -1.1", sol.Status, sol.Objective)
	}
	if !approx(sol.X[x], 0.7, 1e-7) || !approx(sol.X[y], 0.4, 1e-7) {
		t.Errorf("solution = (%v, %v)", sol.X[x], sol.X[y])
	}
}

func TestSimplexDegenerate(t *testing.T) {
	// Redundant constraints at the optimum (degeneracy) must not cycle.
	m := NewModel()
	x := m.AddVar(-1, "x", math.Inf(1), false)
	y := m.AddVar(-1, "y", math.Inf(1), false)
	m.AddConstraint(map[int]float64{x: 1, y: 1}, LE, 2)
	m.AddConstraint(map[int]float64{x: 1}, LE, 2)
	m.AddConstraint(map[int]float64{y: 1}, LE, 2)
	m.AddConstraint(map[int]float64{x: 2, y: 2}, LE, 4) // duplicate of first
	sol, err := SolveLP(m)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approx(sol.Objective, -2, 1e-7) {
		t.Fatalf("got %v obj %v, want optimal -2", sol.Status, sol.Objective)
	}
}

func TestEmptyModel(t *testing.T) {
	sol, err := SolveLP(NewModel())
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || sol.Objective != 0 {
		t.Fatalf("empty model: %v obj %v", sol.Status, sol.Objective)
	}
}

// TestMIPKnapsack: max value (min negative) 0/1 knapsack, verified against
// brute force.
func TestMIPKnapsack(t *testing.T) {
	values := []float64{10, 13, 7, 8, 9, 4}
	weights := []float64{5, 7, 3, 4, 5, 2}
	capacity := 12.0

	m := NewModel()
	coeffs := map[int]float64{}
	for i, v := range values {
		idx := m.AddVar(-v, "x", 1, true)
		coeffs[idx] = weights[i]
	}
	m.AddConstraint(coeffs, LE, capacity)
	res, err := SolveMIP(m, MIPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}

	// Brute force.
	best := 0.0
	for mask := 0; mask < 1<<len(values); mask++ {
		var v, w float64
		for i := range values {
			if mask&(1<<i) != 0 {
				v += values[i]
				w += weights[i]
			}
		}
		if w <= capacity && v > best {
			best = v
		}
	}
	if !approx(res.Objective, -best, 1e-7) {
		t.Errorf("MIP objective = %v, want %v", res.Objective, -best)
	}
	if res.Gap != 0 {
		t.Errorf("gap = %v, want 0", res.Gap)
	}
	on := RoundedVars(m, res.X)
	var w float64
	for _, i := range on {
		w += weights[i]
	}
	if w > capacity+1e-9 {
		t.Errorf("selected weight %v exceeds capacity", w)
	}
}

func TestMIPAlreadyIntegral(t *testing.T) {
	// LP relaxation is integral: no branching needed.
	m := NewModel()
	x := m.AddVar(-1, "x", 1, true)
	y := m.AddVar(-1, "y", 1, true)
	m.AddConstraint(map[int]float64{x: 1, y: 1}, LE, 2)
	res, err := SolveMIP(m, MIPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || !approx(res.Objective, -2, 1e-7) {
		t.Fatalf("got %v obj %v", res.Status, res.Objective)
	}
}

func TestMIPInfeasible(t *testing.T) {
	m := NewModel()
	x := m.AddVar(1, "x", 1, true)
	m.AddConstraint(map[int]float64{x: 1}, GE, 2)
	res, err := SolveMIP(m, MIPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestMIPDeadlineDNF(t *testing.T) {
	// A larger random knapsack with an immediate deadline must report DNF.
	r := rand.New(rand.NewSource(1))
	m := NewModel()
	coeffs := map[int]float64{}
	for i := 0; i < 40; i++ {
		idx := m.AddVar(-(1 + r.Float64()), "x", 1, true)
		coeffs[idx] = 1 + r.Float64()
	}
	m.AddConstraint(coeffs, LE, 10)
	res, err := SolveMIP(m, MIPOptions{Deadline: time.Now().Add(-time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.DNF {
		t.Error("expected DNF with expired deadline")
	}
}

func TestMIPGapStopsEarly(t *testing.T) {
	// Distinct value/weight ratios keep the LP bound informative; near-equal
	// ratios would make exact proof combinatorial (the known hard case for
	// pure LP-based branch and bound).
	r := rand.New(rand.NewSource(2))
	m := NewModel()
	coeffs := map[int]float64{}
	for i := 0; i < 14; i++ {
		idx := m.AddVar(-math.Round(20*r.Float64()+1), "x", 1, true)
		coeffs[idx] = math.Round(9*r.Float64()) + 1
	}
	m.AddConstraint(coeffs, LE, 23)
	loose, err := SolveMIP(m, MIPOptions{Gap: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := SolveMIP(m, MIPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if loose.Status != Optimal || tight.Status != Optimal {
		t.Fatalf("statuses: %v, %v", loose.Status, tight.Status)
	}
	if loose.Nodes > tight.Nodes {
		t.Errorf("loose gap explored more nodes (%d) than exact (%d)", loose.Nodes, tight.Nodes)
	}
	// Loose incumbent must be within the claimed gap of the true optimum.
	if loose.Objective > tight.Objective*(1-0.25)+1e-7 {
		t.Errorf("loose objective %v violates 25%% gap vs optimum %v", loose.Objective, tight.Objective)
	}
}

// TestMIPRandomAgainstBruteForce: property — random small 0/1 problems with
// two knapsack constraints match exhaustive enumeration.
func TestMIPRandomAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		nv := 4 + r.Intn(6)
		values := make([]float64, nv)
		w1 := make([]float64, nv)
		w2 := make([]float64, nv)
		for i := range values {
			values[i] = math.Round(10*r.Float64()) + 1
			w1[i] = math.Round(5*r.Float64()) + 1
			w2[i] = math.Round(5 * r.Float64())
		}
		c1 := math.Round(float64(nv)) + 2
		c2 := math.Round(float64(nv) * 1.5)

		m := NewModel()
		co1 := map[int]float64{}
		co2 := map[int]float64{}
		for i := 0; i < nv; i++ {
			idx := m.AddVar(-values[i], "x", 1, true)
			co1[idx] = w1[i]
			co2[idx] = w2[i]
		}
		m.AddConstraint(co1, LE, c1)
		m.AddConstraint(co2, LE, c2)
		res, err := SolveMIP(m, MIPOptions{})
		if err != nil {
			t.Fatal(err)
		}

		best := 0.0
		for mask := 0; mask < 1<<nv; mask++ {
			var v, a, b float64
			for i := 0; i < nv; i++ {
				if mask&(1<<i) != 0 {
					v += values[i]
					a += w1[i]
					b += w2[i]
				}
			}
			if a <= c1 && b <= c2 && v > best {
				best = v
			}
		}
		if res.Status != Optimal || !approx(res.Objective, -best, 1e-6) {
			t.Errorf("trial %d: MIP %v obj %v, brute force %v", trial, res.Status, res.Objective, -best)
		}
	}
}

func TestDeadlineInterruptsSingleSolve(t *testing.T) {
	// A large dense LP must honor the deadline INSIDE one simplex solve,
	// not only between branch-and-bound nodes.
	r := rand.New(rand.NewSource(5))
	m := NewModel()
	n := 400
	vars := make([]int, n)
	for i := 0; i < n; i++ {
		vars[i] = m.AddVar(-r.Float64(), "x", 1, true)
	}
	for c := 0; c < 400; c++ {
		coeffs := map[int]float64{}
		for i := c % 7; i < n; i += 7 {
			coeffs[vars[i]] = 1 + r.Float64()
		}
		m.AddConstraint(coeffs, LE, 5+10*r.Float64())
	}
	start := time.Now()
	res, err := SolveMIP(m, MIPOptions{Deadline: time.Now().Add(150 * time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed > 3*time.Second {
		t.Errorf("deadline ignored: solve took %v", elapsed)
	}
	if res.Status == Optimal && res.Gap > 1e-9 && !res.DNF {
		t.Errorf("timed-out solve did not report DNF: %+v", res)
	}
}
