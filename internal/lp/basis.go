package lp

import (
	"math"
	"sort"
)

// Variable states of the bounded revised simplex.
const (
	atLower int8 = iota
	atUpper
	isBasic
)

// etaFile is a product-form representation of the basis inverse:
// B⁻¹ = E_K ··· E_1, each eta an elementary column transformation recorded
// at a pivot. FTRAN applies etas forward, BTRAN backward. The file is reset
// at each refactorization.
type etaFile struct {
	pivRow []int32
	pivVal []float64
	start  []int32 // eta k owns entries [start[k], start[k+1])
	rows   []int32
	vals   []float64
}

func (e *etaFile) reset() {
	e.pivRow = e.pivRow[:0]
	e.pivVal = e.pivVal[:0]
	e.rows = e.rows[:0]
	e.vals = e.vals[:0]
	if len(e.start) == 0 {
		e.start = append(e.start, 0)
	}
	e.start = e.start[:1]
}

func (e *etaFile) count() int { return len(e.pivRow) }

// push records an eta from the FTRAN'd entering column v (dense, support in
// touched) pivoting at row r. v is left unchanged.
func (e *etaFile) push(v []float64, touched []int32, r int32) {
	const dropTol = 1e-12
	for _, i := range touched {
		if i != r && math.Abs(v[i]) > dropTol {
			e.rows = append(e.rows, i)
			e.vals = append(e.vals, v[i])
		}
	}
	e.pivRow = append(e.pivRow, r)
	e.pivVal = append(e.pivVal, v[r])
	e.start = append(e.start, int32(len(e.rows)))
}

// sparseSolver is one revised-simplex workspace bound to an immutable prob.
// Branch-and-bound workers each own one and reuse it across nodes; lo/up
// are per-solver copies so node bound changes never touch the shared prob.
type sparseSolver struct {
	p      *prob
	lo, up []float64 // working bounds, length n+m

	basic []int32 // basic[r] = column occupying row r
	state []int8  // per column
	pos   []int32 // column → row when basic, -1 otherwise
	xB    []float64
	d     []float64 // reduced costs, maintained; refreshed at refactorization

	etas etaFile

	// Dense scratch with explicit support tracking.
	colV      []float64 // length m: FTRAN column
	colMark   []bool
	colTch    []int32
	rhoV      []float64 // length m: BTRAN row
	rhoMark   []bool
	rhoTch    []int32
	alpha     []float64 // length n+m: pivot row over columns
	alphaMark []bool
	alphaTch  []int32

	infeas   []int32 // candidate primal-infeasible rows (lazily validated)
	inInfeas []bool

	priceList   []int32   // partial-pricing shortlist of attractive columns
	priceScores []float64 // scratch: scores aligned with priceList at refresh

	refactOrder []int32 // scratch: structural basics in sparsity order
	basicCols   []int32 // scratch: snapshot of the basic set
	pendingCol  []bool  // scratch: structural columns awaiting a pivot row
	rowCnt      []int32 // scratch: pending-column count per unclaimed row
	peelQ       []int32 // scratch: singleton-row worklist

	iters       int
	refacts     int
	boundFlips  int
	sinceRefact int
	stall       int
	bland       bool

	feasTol float64
	dualTol float64
}

const (
	pivTol        = 1e-8
	degenTol      = 1e-10
	refactorEvery = 100
	stallLimit    = 100
)

func newSparseSolver(p *prob) *sparseSolver {
	N := p.n + p.m
	return &sparseSolver{
		p:          p,
		lo:         make([]float64, N),
		up:         make([]float64, N),
		basic:      make([]int32, p.m),
		state:      make([]int8, N),
		pos:        make([]int32, N),
		xB:         make([]float64, p.m),
		d:          make([]float64, N),
		colV:       make([]float64, p.m),
		colMark:    make([]bool, p.m),
		rhoV:       make([]float64, p.m),
		rhoMark:    make([]bool, p.m),
		alpha:      make([]float64, N),
		alphaMark:  make([]bool, N),
		inInfeas:   make([]bool, p.m),
		pendingCol: make([]bool, p.n),
		rowCnt:     make([]int32, p.m),
		feasTol:    1e-7,
		dualTol:    1e-7 * p.cScale,
	}
}

// boundFix overrides one structural variable's bounds (branch-and-bound
// tightening: for 0/1 variables, [0,0] or [1,1]).
type boundFix struct {
	v      int32
	lo, hi float64
}

// basisSnapshot is a restartable basis: which column occupies each row plus
// which nonbasic columns rest at their upper bound. It is immutable once
// taken; sibling nodes share their parent's snapshot.
type basisSnapshot struct {
	basic   []int32
	atUpper []uint64 // bitset over columns
}

func (s *sparseSolver) snapshot() *basisSnapshot {
	N := s.p.n + s.p.m
	snap := &basisSnapshot{
		basic:   append([]int32(nil), s.basic...),
		atUpper: make([]uint64, (N+63)/64),
	}
	for j := 0; j < N; j++ {
		if s.state[j] == atUpper {
			snap.atUpper[j>>6] |= 1 << (uint(j) & 63)
		}
	}
	return snap
}

// crashBasis builds the all-logical (slack) basis with the hinted structural
// columns resting at their upper bounds instead of their lowers. The basis
// matrix is still the identity, so installation cannot be singular; only the
// starting vertex changes. Hints out of range or on columns without a finite
// upper bound are ignored.
func crashBasis(p *prob, atUp []int) *basisSnapshot {
	N := p.n + p.m
	snap := &basisSnapshot{
		basic:   make([]int32, p.m),
		atUpper: make([]uint64, (N+63)/64),
	}
	for i := 0; i < p.m; i++ {
		snap.basic[i] = int32(p.n + i)
	}
	for _, j := range atUp {
		if j >= 0 && j < p.n && !math.IsInf(p.up[j], 1) {
			snap.atUpper[j>>6] |= 1 << (uint(j) & 63)
		}
	}
	return snap
}

// reset prepares the workspace for a fresh solve: base bounds plus fixes,
// and either the warm-start basis or the all-logical (slack) basis.
func (s *sparseSolver) reset(fixes []boundFix, warm *basisSnapshot) {
	p := s.p
	copy(s.lo, p.lo)
	copy(s.up, p.up)
	for _, f := range fixes {
		s.lo[f.v], s.up[f.v] = f.lo, f.hi
	}
	s.iters = 0
	s.stall = 0
	s.bland = false
	s.priceList = s.priceList[:0]
	s.installBasis(warm)
}

// installBasis loads warm (or the slack basis when nil) and refactorizes.
// A numerically singular warm basis falls back to the slack basis.
func (s *sparseSolver) installBasis(warm *basisSnapshot) {
	p := s.p
	if warm != nil {
		copy(s.basic, warm.basic)
		for j := 0; j < p.n+p.m; j++ {
			if warm.atUpper[j>>6]&(1<<(uint(j)&63)) != 0 {
				s.state[j] = atUpper
			} else {
				s.state[j] = atLower
			}
		}
		for _, col := range s.basic {
			s.state[col] = isBasic
		}
		if s.refactorize() {
			return
		}
		// Singular warm basis: degrade to cold start.
	}
	for j := 0; j < p.n; j++ {
		s.state[j] = atLower
		// A branching fix may pin a variable at a nonzero lower bound; with
		// upper infinite the lower is the only finite bound anyway.
	}
	for i := 0; i < p.m; i++ {
		col := int32(p.n + i)
		s.basic[i] = col
		s.state[col] = isBasic
	}
	if !s.refactorize() {
		// The slack basis is the identity; refactorization cannot fail.
		panic("lp: slack basis refactorization failed")
	}
}

// nonbasicValue returns the current value of nonbasic column j.
func (s *sparseSolver) nonbasicValue(j int32) float64 {
	if s.state[j] == atUpper {
		return s.up[j]
	}
	lo := s.lo[j]
	if math.IsInf(lo, -1) {
		// Free-at-lower cannot happen for structural columns (lower is
		// always finite); GE logicals rest at their upper bound 0.
		return 0
	}
	return lo
}

// scatterColumn loads structural column j (or the logical unit column) into
// colV, returning the touched support.
func (s *sparseSolver) scatterColumn(j int32) {
	p := s.p
	s.colTch = s.colTch[:0]
	if int(j) >= p.n {
		r := j - int32(p.n)
		s.colV[r] = 1
		s.colMark[r] = true
		s.colTch = append(s.colTch, r)
		return
	}
	for idx := p.colPtr[j]; idx < p.colPtr[j+1]; idx++ {
		r := p.colRow[idx]
		if !s.colMark[r] {
			s.colMark[r] = true
			s.colTch = append(s.colTch, r)
		}
		s.colV[r] += p.colVal[idx]
	}
}

// clearColumn zeroes colV's support.
func (s *sparseSolver) clearColumn() {
	for _, r := range s.colTch {
		s.colV[r] = 0
		s.colMark[r] = false
	}
	s.colTch = s.colTch[:0]
}

// ftranCol applies the eta file to colV in place (v ← B⁻¹ v), maintaining
// the touched support. Etas whose pivot entry is zero are skipped, which is
// the dominant case for the short columns of VUB-structured models.
func (s *sparseSolver) ftranCol() {
	e := &s.etas
	for k := 0; k < len(e.pivRow); k++ {
		r := e.pivRow[k]
		vr := s.colV[r]
		if vr == 0 {
			continue
		}
		vr /= e.pivVal[k]
		s.colV[r] = vr
		for idx := e.start[k]; idx < e.start[k+1]; idx++ {
			i := e.rows[idx]
			if !s.colMark[i] {
				s.colMark[i] = true
				s.colTch = append(s.colTch, i)
			}
			s.colV[i] -= e.vals[idx] * vr
		}
	}
}

// btranRow computes rhoV ← (eᵣ)ᵀ B⁻¹ with support tracking.
func (s *sparseSolver) btranRow(r int32) {
	s.rhoTch = s.rhoTch[:0]
	s.rhoV[r] = 1
	s.rhoMark[r] = true
	s.rhoTch = append(s.rhoTch, r)
	e := &s.etas
	for k := len(e.pivRow) - 1; k >= 0; k-- {
		pr := e.pivRow[k]
		acc := s.rhoV[pr]
		for idx := e.start[k]; idx < e.start[k+1]; idx++ {
			acc -= e.vals[idx] * s.rhoV[e.rows[idx]]
		}
		acc /= e.pivVal[k]
		if acc != 0 && !s.rhoMark[pr] {
			s.rhoMark[pr] = true
			s.rhoTch = append(s.rhoTch, pr)
		}
		s.rhoV[pr] = acc
	}
}

func (s *sparseSolver) clearRho() {
	for _, r := range s.rhoTch {
		s.rhoV[r] = 0
		s.rhoMark[r] = false
	}
	s.rhoTch = s.rhoTch[:0]
}

// ftranDense applies the eta file to a full-length vector without support
// tracking (used when recomputing xB at refactorization).
func (s *sparseSolver) ftranDense(v []float64) {
	e := &s.etas
	for k := 0; k < len(e.pivRow); k++ {
		r := e.pivRow[k]
		vr := v[r]
		if vr == 0 {
			continue
		}
		vr /= e.pivVal[k]
		v[r] = vr
		for idx := e.start[k]; idx < e.start[k+1]; idx++ {
			v[e.rows[idx]] -= e.vals[idx] * vr
		}
	}
}

// btranDense applies the transposed eta file to a full-length vector (used
// when recomputing duals at refactorization).
func (s *sparseSolver) btranDense(y []float64) {
	e := &s.etas
	for k := len(e.pivRow) - 1; k >= 0; k-- {
		r := e.pivRow[k]
		acc := y[r]
		for idx := e.start[k]; idx < e.start[k+1]; idx++ {
			acc -= e.vals[idx] * y[e.rows[idx]]
		}
		y[r] = acc / e.pivVal[k]
	}
}

// refactorize rebuilds the eta file from scratch. Basic logical columns
// claim their own rows for free (they are unit vectors of the identity the
// product form starts from). Structural columns are placed in two stages:
//
//  1. Triangular peel. A row touched by exactly one still-unplaced column
//     admits a fill-free pivot: no earlier peeled pivot row can appear in
//     that column (its row count would have been ≥ 2), so the FTRAN through
//     the existing file is the identity and the eta is the original column
//     verbatim. Peeling one column creates new singleton rows, which are
//     processed worklist-style — total cost O(nnz). VUB-structured bases
//     are near-triangular, so this stage places almost everything.
//  2. Bump. Whatever remains — shortest columns first — is FTRAN'd through
//     the partial file and pivoted onto its largest-magnitude unclaimed
//     row, as a general product-form build.
//
// It then recomputes xB and the reduced costs, wiping accumulated
// floating-point drift. Returns false if the basis is numerically singular.
func (s *sparseSolver) refactorize() bool {
	p := s.p
	s.etas.reset()
	s.refacts++
	s.sinceRefact = 0

	for j := range s.pos {
		s.pos[j] = -1
	}
	claimed := s.rhoMark // reuse as row-claim flags; cleared below
	for i := range claimed {
		claimed[i] = false
	}
	// Snapshot the basic set first: reassigning rows below rewrites s.basic
	// in place, and a logical column claiming its own row may overwrite an
	// entry that has not been visited yet.
	s.basicCols = append(s.basicCols[:0], s.basic...)
	s.refactOrder = s.refactOrder[:0]
	for _, col := range s.basicCols {
		if int(col) >= p.n {
			row := col - int32(p.n)
			claimed[row] = true
			s.basic[row] = col // logical owns its row
			s.pos[col] = row
		} else {
			s.refactOrder = append(s.refactOrder, col)
			s.pendingCol[col] = true
		}
	}
	sort.Slice(s.refactOrder, func(a, b int) bool {
		ca, cb := s.refactOrder[a], s.refactOrder[b]
		na, nb := p.colNNZ(ca), p.colNNZ(cb)
		if na != nb {
			return na < nb
		}
		return ca < cb
	})

	// Stage 1: peel singleton rows.
	for i := range s.rowCnt {
		s.rowCnt[i] = 0
	}
	for _, col := range s.refactOrder {
		for idx := p.colPtr[col]; idx < p.colPtr[col+1]; idx++ {
			if r := p.colRow[idx]; !claimed[r] {
				s.rowCnt[r]++
			}
		}
	}
	s.peelQ = s.peelQ[:0]
	for i := int32(0); int(i) < p.m; i++ {
		if !claimed[i] && s.rowCnt[i] == 1 {
			s.peelQ = append(s.peelQ, i)
		}
	}
	for qi := 0; qi < len(s.peelQ); qi++ {
		r := s.peelQ[qi]
		if claimed[r] || s.rowCnt[r] != 1 {
			continue
		}
		col := int32(-1)
		var pv float64
		for idx := p.rowPtr[r]; idx < p.rowPtr[r+1]; idx++ {
			if c := p.rowCol[idx]; s.pendingCol[c] {
				col, pv = c, p.rowVal[idx]
				break
			}
		}
		if col < 0 {
			continue
		}
		// Threshold pivoting: a singleton row whose entry is tiny relative
		// to its column is numerically unsafe; leave it to the bump stage.
		colMax := 0.0
		for idx := p.colPtr[col]; idx < p.colPtr[col+1]; idx++ {
			if a := math.Abs(p.colVal[idx]); a > colMax {
				colMax = a
			}
		}
		if a := math.Abs(pv); a <= pivTol || a < 0.01*colMax {
			continue
		}
		e := &s.etas
		for idx := p.colPtr[col]; idx < p.colPtr[col+1]; idx++ {
			if rr := p.colRow[idx]; rr != r && math.Abs(p.colVal[idx]) > 1e-12 {
				e.rows = append(e.rows, rr)
				e.vals = append(e.vals, p.colVal[idx])
			}
		}
		e.pivRow = append(e.pivRow, r)
		e.pivVal = append(e.pivVal, pv)
		e.start = append(e.start, int32(len(e.rows)))
		claimed[r] = true
		s.basic[r] = col
		s.pos[col] = r
		s.pendingCol[col] = false
		for idx := p.colPtr[col]; idx < p.colPtr[col+1]; idx++ {
			if rr := p.colRow[idx]; !claimed[rr] {
				s.rowCnt[rr]--
				if s.rowCnt[rr] == 1 {
					s.peelQ = append(s.peelQ, rr)
				}
			}
		}
	}

	// Stage 2: general product-form build for the bump.
	ok := true
	for _, col := range s.refactOrder {
		if !s.pendingCol[col] {
			continue
		}
		s.scatterColumn(col)
		s.ftranCol()
		best := int32(-1)
		bestAbs := pivTol
		for _, r := range s.colTch {
			if claimed[r] {
				continue
			}
			if a := math.Abs(s.colV[r]); a > bestAbs || (a == bestAbs && (best == -1 || r < best)) {
				bestAbs, best = a, r
			}
		}
		if best == -1 {
			ok = false
			s.clearColumn()
			break
		}
		s.etas.push(s.colV, s.colTch, best)
		claimed[best] = true
		s.basic[best] = col
		s.pos[col] = best
		s.pendingCol[col] = false
		s.clearColumn()
	}
	for i := range claimed {
		claimed[i] = false
	}
	for _, col := range s.refactOrder {
		s.pendingCol[col] = false
	}
	if !ok {
		return false
	}

	s.recomputePrimal()
	s.recomputeDuals(p.c)
	return true
}

// recomputePrimal sets xB = B⁻¹(b − N x_N) from scratch.
func (s *sparseSolver) recomputePrimal() {
	p := s.p
	v := s.xB
	copy(v, p.b)
	for j := int32(0); int(j) < p.n+p.m; j++ {
		if s.state[j] == isBasic {
			continue
		}
		val := s.nonbasicValue(j)
		if val == 0 {
			continue
		}
		if int(j) >= p.n {
			v[j-int32(p.n)] -= val
			continue
		}
		for idx := p.colPtr[j]; idx < p.colPtr[j+1]; idx++ {
			v[p.colRow[idx]] -= p.colVal[idx] * val
		}
	}
	s.ftranDense(v)
	s.rebuildInfeasible()
}

// recomputeDuals sets d = c − cB B⁻¹ A from scratch for the given cost
// vector (structural costs; logicals cost zero).
func (s *sparseSolver) recomputeDuals(c []float64) {
	p := s.p
	y := s.rhoV // reuse as a dense work vector; cleared after use
	for i := 0; i < p.m; i++ {
		col := s.basic[i]
		if int(col) < p.n {
			y[i] = c[col]
		} else {
			y[i] = 0
		}
	}
	s.btranDense(y)
	for j := int32(0); int(j) < p.n; j++ {
		if s.state[j] == isBasic {
			s.d[j] = 0
			continue
		}
		dj := c[j]
		for idx := p.colPtr[j]; idx < p.colPtr[j+1]; idx++ {
			dj -= y[p.colRow[idx]] * p.colVal[idx]
		}
		s.d[j] = dj
	}
	for i := 0; i < p.m; i++ {
		col := int32(p.n + i)
		if s.state[col] == isBasic {
			s.d[col] = 0
		} else {
			s.d[col] = -y[i]
		}
	}
	for i := range y {
		y[i] = 0
	}
	s.rhoTch = s.rhoTch[:0]
}

// rebuildInfeasible rescans every row's basic value against its bounds.
func (s *sparseSolver) rebuildInfeasible() {
	s.infeas = s.infeas[:0]
	for i := range s.inInfeas {
		s.inInfeas[i] = false
	}
	for i := 0; i < s.p.m; i++ {
		if s.rowInfeasibility(int32(i)) > s.feasTol {
			s.infeas = append(s.infeas, int32(i))
			s.inInfeas[i] = true
		}
	}
}

// rowInfeasibility returns how far row i's basic value lies outside its
// variable's bounds (0 when feasible).
func (s *sparseSolver) rowInfeasibility(i int32) float64 {
	col := s.basic[i]
	if v := s.lo[col] - s.xB[i]; v > 0 {
		return v
	}
	if v := s.xB[i] - s.up[col]; v > 0 {
		return v
	}
	return 0
}

// markInfeasible queues row i for the dual pricing scan if out of bounds.
func (s *sparseSolver) markInfeasible(i int32) {
	if !s.inInfeas[i] && s.rowInfeasibility(i) > s.feasTol {
		s.infeas = append(s.infeas, i)
		s.inInfeas[i] = true
	}
}
