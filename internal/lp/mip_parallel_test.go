package lp

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/telemetry"
)

// randomMIP builds a 0/1 program with knapsack and covering rows — enough
// structure to force real branching (flooring violates the GE rows, so the
// floor heuristic cannot close every node at the root).
func randomMIP(seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	m := NewModel()
	n := 12 + rng.Intn(8)
	for j := 0; j < n; j++ {
		cost := math.Round((rng.Float64()*10-6)*10) / 10
		m.AddVar(cost, fmt.Sprintf("b%d", j), 1, true)
	}
	for i := 0; i < 2; i++ {
		coeffs := map[int]float64{}
		tot := 0.0
		for j := 0; j < n; j++ {
			if rng.Intn(2) == 0 {
				w := math.Round((1+rng.Float64()*9)*10) / 10
				coeffs[j] = w
				tot += w
			}
		}
		if len(coeffs) > 0 {
			m.AddConstraint(coeffs, LE, math.Round(tot*4)/10)
		}
	}
	for i := 0; i < 3; i++ {
		coeffs := map[int]float64{}
		for k := 0; k < 3; k++ {
			coeffs[rng.Intn(n)] = 1
		}
		m.AddConstraint(coeffs, GE, 1)
	}
	return m
}

type mipRun struct {
	res   *MIPResult
	trace []telemetry.Record
}

func runMIP(t *testing.T, m *Model, parallelism int) mipRun {
	t.Helper()
	tr := telemetry.NewTracer(4096, nil)
	root := tr.Start("test")
	res, err := SolveMIP(m, MIPOptions{Parallelism: parallelism, Span: root})
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	return mipRun{res: res, trace: tr.Snapshot()}
}

// TestMIPDeterminismAcrossParallelism is the bit-identical guarantee
// (mirroring core's parallel evaluator): incumbent, bound, node counts,
// every solver statistic, and the journal trace must be identical at
// parallelism 1, 4, and GOMAXPROCS across seeds.
func TestMIPDeterminismAcrossParallelism(t *testing.T) {
	levels := []int{1, 4, runtime.GOMAXPROCS(0)}
	for seed := int64(1); seed <= 8; seed++ {
		m := randomMIP(seed)
		base := runMIP(t, m, levels[0])
		if base.res.Nodes < 2 {
			continue // too easy to exercise batching; other seeds cover it
		}
		for _, par := range levels[1:] {
			got := runMIP(t, m, par)
			a, b := base.res, got.res
			if a.Objective != b.Objective || a.Bound != b.Bound || a.Gap != b.Gap {
				t.Fatalf("seed %d par %d: (obj, bound, gap) = (%v, %v, %v) vs (%v, %v, %v)",
					seed, par, b.Objective, b.Bound, b.Gap, a.Objective, a.Bound, a.Gap)
			}
			if a.Nodes != b.Nodes || a.NodesPruned != b.NodesPruned ||
				a.SimplexIters != b.SimplexIters || a.Refactorizations != b.Refactorizations ||
				a.WarmStartHits != b.WarmStartHits || a.DNF != b.DNF {
				t.Fatalf("seed %d par %d: stats %+v vs %+v", seed, par,
					[]int{b.Nodes, b.NodesPruned, b.SimplexIters, b.Refactorizations, b.WarmStartHits},
					[]int{a.Nodes, a.NodesPruned, a.SimplexIters, a.Refactorizations, a.WarmStartHits})
			}
			if !reflect.DeepEqual(a.X, b.X) {
				t.Fatalf("seed %d par %d: incumbent vectors differ", seed, par)
			}
			traceEqualLP(t, seed, par, base.trace, got.trace)
		}
	}
}

// traceEqualLP compares journal traces by span name and attributes (IDs and
// durations are timing-dependent by nature and excluded).
func traceEqualLP(t *testing.T, seed int64, par int, a, b []telemetry.Record) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("seed %d par %d: %d trace records vs %d", seed, par, len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Fatalf("seed %d par %d: record %d name %q vs %q", seed, par, i, b[i].Name, a[i].Name)
		}
		aa, ba := a[i].Attrs, b[i].Attrs
		if aa != nil && ba != nil {
			// The parallelism attribute intentionally records the setting
			// under test; everything else must match exactly.
			aa = cloneWithout(aa, "parallelism")
			ba = cloneWithout(ba, "parallelism")
		}
		if !reflect.DeepEqual(aa, ba) {
			t.Fatalf("seed %d par %d: record %d (%s) attrs %v vs %v",
				seed, par, i, a[i].Name, ba, aa)
		}
	}
}

func cloneWithout(m map[string]any, key string) map[string]any {
	out := make(map[string]any, len(m))
	for k, v := range m {
		if k != key {
			out[k] = v
		}
	}
	return out
}

// TestMIPMaxNodesSetsDNF is the reporting fix: exhausting MaxNodes with no
// deadline must still mark the result DNF when the gap is unproven.
func TestMIPMaxNodesSetsDNF(t *testing.T) {
	m := randomMIP(3)
	res, err := SolveMIP(m, MIPOptions{MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.DNF {
		t.Fatalf("MaxNodes exhaustion did not set DNF: %+v", res)
	}
	full, err := SolveMIP(m, MIPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if full.DNF {
		t.Fatalf("unlimited solve reported DNF: %+v", full)
	}
}

// TestMIPCutoffPrunes: with an external cutoff at the known optimum, the
// search can prove "nothing beats the cutoff" and stop without DNF; with a
// looser cutoff it must still find the true optimum.
func TestMIPCutoffPrunes(t *testing.T) {
	m := randomMIP(5)
	exact, err := SolveMIP(m, MIPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if exact.Status != Optimal {
		t.Skipf("seed MIP not solvable to optimality: %v", exact.Status)
	}
	withCut, err := SolveMIP(m, MIPOptions{Cutoff: exact.Objective})
	if err != nil {
		t.Fatal(err)
	}
	if withCut.DNF {
		t.Fatalf("cutoff run reported DNF: %+v", withCut)
	}
	// Any incumbent it does return must not beat the proven optimum, and its
	// proven bound must not exceed the optimum.
	if withCut.Status == Optimal && withCut.Objective < exact.Objective-1e-6 {
		t.Fatalf("cutoff run objective %v below optimum %v", withCut.Objective, exact.Objective)
	}
	if withCut.Bound > exact.Objective+1e-6 {
		t.Fatalf("cutoff run bound %v exceeds optimum %v", withCut.Bound, exact.Objective)
	}
	loose, err := SolveMIP(m, MIPOptions{Cutoff: exact.Objective + 100})
	if err != nil {
		t.Fatal(err)
	}
	if loose.Status != Optimal || !approx(loose.Objective, exact.Objective, 1e-6) {
		t.Fatalf("loose cutoff run got %v obj %v, want optimal %v",
			loose.Status, loose.Objective, exact.Objective)
	}
}

// TestMIPMatchesDenseBaseline: the warm-started B&B and the retained dense
// cold-start B&B must agree on optimal objectives.
func TestMIPMatchesDenseBaseline(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		m := randomMIP(seed)
		sparse, err := SolveMIP(m, MIPOptions{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		dense, err := denseSolveMIP(m, MIPOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if sparse.Status != dense.Status {
			t.Fatalf("seed %d: sparse %v vs dense %v", seed, sparse.Status, dense.Status)
		}
		if sparse.Status != Optimal {
			continue
		}
		tol := 1e-6 * (1 + math.Abs(dense.Objective))
		if !approx(sparse.Objective, dense.Objective, tol) {
			t.Fatalf("seed %d: objective sparse %v vs dense %v", seed, sparse.Objective, dense.Objective)
		}
	}
}
