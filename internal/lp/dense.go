package lp

import (
	"math"
	"time"
)

// This file preserves the seed's dense two-phase primal simplex and its
// cold-start branch-and-bound. They are no longer on any production path —
// SolveLP/SolveMIP use the sparse revised simplex — but remain as the
// differential-testing oracle and the baseline for the node-throughput
// benchmark (results/BENCH_lp.json).

// denseSolveLP solves the LP relaxation with the dense tableau solver.
// Finite upper bounds become explicit constraint rows.
func denseSolveLP(m *Model) (*Solution, error) {
	return denseSolveWithExtra(m, nil, time.Time{})
}

// denseSolveWithExtra solves m plus the given extra constraints (used by
// the dense branch and bound to bound branching variables without copying
// the model).
func denseSolveWithExtra(m *Model, extra []Constraint, deadline time.Time) (*Solution, error) {
	n := m.NumVars()
	if n == 0 {
		return &Solution{Status: Optimal, X: nil, Objective: 0}, nil
	}
	cons := make([]Constraint, 0, len(m.cons)+len(extra)+n)
	cons = append(cons, m.cons...)
	cons = append(cons, extra...)
	for i, u := range m.upper {
		if !math.IsInf(u, 1) {
			cons = append(cons, Constraint{Cols: []int32{int32(i)}, Vals: []float64{1}, Sense: LE, RHS: u})
		}
	}
	t := newTableau(m.obj, cons)
	t.deadline = deadline
	sol := t.solve()
	if sol.Status == Optimal {
		sol.X = sol.X[:n]
	}
	return sol, nil
}

// tableau is a dense simplex tableau in standard form.
type tableau struct {
	rows, cols int // constraint rows, total columns incl. slack/artificial
	nStruct    int // structural variables
	a          [][]float64
	rhs        []float64
	obj        []float64 // phase-2 objective over all columns
	basis      []int
	artStart   int // first artificial column
	iters      int
	z          []float64 // maintained reduced-cost row for the active objective
	zval       float64   // maintained objective value (negated convention not used)
	deadline   time.Time // zero = none; checked periodically during pivoting
}

const denseMaxIters = 200_000

func newTableau(obj []float64, cons []Constraint) *tableau {
	n := len(obj)
	mRows := len(cons)

	// Count auxiliary columns.
	slacks := 0
	arts := 0
	for _, c := range cons {
		rhs := c.RHS
		sense := c.Sense
		if rhs < 0 {
			// Row will be negated; flips LE<->GE.
			switch sense {
			case LE:
				sense = GE
			case GE:
				sense = LE
			}
		}
		switch sense {
		case LE:
			slacks++
		case GE:
			slacks++
			arts++
		case EQ:
			arts++
		}
	}
	cols := n + slacks + arts
	t := &tableau{
		rows:     mRows,
		cols:     cols,
		nStruct:  n,
		a:        make([][]float64, mRows),
		rhs:      make([]float64, mRows),
		obj:      make([]float64, cols),
		basis:    make([]int, mRows),
		artStart: n + slacks,
	}
	copy(t.obj, obj)

	slackCol := n
	artCol := n + slacks
	for i, c := range cons {
		row := make([]float64, cols)
		sign := 1.0
		rhs := c.RHS
		sense := c.Sense
		if rhs < 0 {
			sign, rhs = -1, -rhs
			switch sense {
			case LE:
				sense = GE
			case GE:
				sense = LE
			}
		}
		for k, j := range c.Cols {
			row[j] += sign * c.Vals[k]
		}
		switch sense {
		case LE:
			row[slackCol] = 1
			t.basis[i] = slackCol
			slackCol++
		case GE:
			row[slackCol] = -1
			slackCol++
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		case EQ:
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		}
		t.a[i] = row
		t.rhs[i] = rhs
	}
	return t
}

// solve runs phase 1 (if artificials exist) then phase 2.
func (t *tableau) solve() *Solution {
	if t.artStart < t.cols {
		phase1 := make([]float64, t.cols)
		for j := t.artStart; j < t.cols; j++ {
			phase1[j] = 1
		}
		status := t.optimize(phase1, true)
		if status != Optimal {
			return &Solution{Status: status, Iterations: t.iters}
		}
		if t.objectiveValue(phase1) > 1e-7 {
			return &Solution{Status: Infeasible, Iterations: t.iters}
		}
		t.driveOutArtificials()
	}
	status := t.optimize(t.obj, false)
	if status != Optimal {
		return &Solution{Status: status, Iterations: t.iters}
	}
	x := make([]float64, t.cols)
	for i, b := range t.basis {
		x[b] = t.rhs[i]
	}
	return &Solution{
		Status:     Optimal,
		X:          x,
		Objective:  t.objectiveValue(t.obj),
		Iterations: t.iters,
	}
}

func (t *tableau) objectiveValue(obj []float64) float64 {
	var v float64
	for i, b := range t.basis {
		v += obj[b] * t.rhs[i]
	}
	return v
}

// setObjective initializes the maintained reduced-cost row
// obj_j - c_B * B^-1 A_j for the current basis. banArtificials pins
// artificial columns' reduced costs at zero so they never re-enter
// (phase 2).
func (t *tableau) setObjective(obj []float64, banArtificials bool) {
	rc := make([]float64, t.cols)
	copy(rc, obj)
	for i, b := range t.basis {
		cb := obj[b]
		if cb == 0 {
			continue
		}
		row := t.a[i]
		for j := 0; j < t.cols; j++ {
			rc[j] -= cb * row[j]
		}
	}
	if banArtificials {
		for j := t.artStart; j < t.cols; j++ {
			rc[j] = 0
		}
	}
	t.z = rc
	t.zval = t.objectiveValue(obj)
}

// optimize runs primal simplex iterations for the given objective.
// In phase 2 artificial columns are excluded from entering the basis: the
// maintained reduced-cost row is updated by pivots, so a one-time pin at
// setObjective would not survive.
func (t *tableau) optimize(obj []float64, isPhase1 bool) Status {
	t.setObjective(obj, !isPhase1)
	scanCols := t.cols
	if !isPhase1 {
		scanCols = t.artStart
	}
	for ; t.iters < denseMaxIters; t.iters++ {
		if t.iters&1023 == 0 && !t.deadline.IsZero() && time.Now().After(t.deadline) {
			return IterationLimit
		}
		rc := t.z
		// Entering column: Dantzig rule early, Bland's rule when degenerate
		// cycling becomes a risk.
		useBland := t.iters > 10_000
		enter := -1
		best := -eps
		for j := 0; j < scanCols; j++ {
			if rc[j] < -eps {
				if useBland {
					enter = j
					break
				}
				if rc[j] < best {
					best, enter = rc[j], j
				}
			}
		}
		if enter == -1 {
			return Optimal
		}
		// Ratio test.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.rows; i++ {
			if t.a[i][enter] > eps {
				r := t.rhs[i] / t.a[i][enter]
				if r < bestRatio-eps || (r < bestRatio+eps && (leave == -1 || t.basis[i] < t.basis[leave])) {
					bestRatio, leave = r, i
				}
			}
		}
		if leave == -1 {
			return Unbounded
		}
		t.pivot(leave, enter)
	}
	return IterationLimit
}

func (t *tableau) pivot(row, col int) {
	p := t.a[row][col]
	inv := 1 / p
	for j := 0; j < t.cols; j++ {
		t.a[row][j] *= inv
	}
	t.rhs[row] *= inv
	for i := 0; i < t.rows; i++ {
		if i == row {
			continue
		}
		f := t.a[i][col]
		if f == 0 {
			continue
		}
		rowData := t.a[row]
		target := t.a[i]
		for j := 0; j < t.cols; j++ {
			target[j] -= f * rowData[j]
		}
		t.rhs[i] -= f * t.rhs[row]
		if t.rhs[i] < 0 && t.rhs[i] > -1e-11 {
			t.rhs[i] = 0
		}
	}
	if t.z != nil {
		if f := t.z[col]; f != 0 {
			rowData := t.a[row]
			for j := 0; j < t.cols; j++ {
				t.z[j] -= f * rowData[j]
			}
			t.zval += f * t.rhs[row]
		}
	}
	t.basis[row] = col
}

// driveOutArtificials pivots basic artificial variables out of the basis
// (possible at zero level after a feasible phase 1), so phase 2 ignores them.
func (t *tableau) driveOutArtificials() {
	for i := 0; i < t.rows; i++ {
		if t.basis[i] < t.artStart {
			continue
		}
		for j := 0; j < t.artStart; j++ {
			if math.Abs(t.a[i][j]) > eps {
				t.pivot(i, j)
				break
			}
		}
		// If no pivot column exists the row is redundant; the artificial
		// stays basic at zero, which is harmless for phase 2.
	}
}

// denseSolveMIP is the seed's cold-start best-first branch and bound: every
// node LP is solved from scratch by the dense tableau, branching on the most
// fractional integer variable via extra constraint rows.
func denseSolveMIP(m *Model, opts MIPOptions) (*MIPResult, error) {
	root, err := denseSolveWithExtra(m, nil, opts.Deadline)
	if err != nil {
		return nil, err
	}
	if root.Status != Optimal {
		res := &MIPResult{Solution: *root}
		if root.Status == IterationLimit {
			res.DNF = true
		}
		return res, nil
	}

	type node struct {
		extra []Constraint
		bound float64
	}
	res := &MIPResult{
		Solution: Solution{Status: Infeasible},
		Bound:    root.Objective,
	}
	res.Objective = math.Inf(1)
	iters := root.Iterations

	open := []node{{bound: root.Objective}}
	popBest := func() node {
		best := 0
		for i := range open {
			if open[i].bound < open[best].bound {
				best = i
			}
		}
		n := open[best]
		open[best] = open[len(open)-1]
		open = open[:len(open)-1]
		return n
	}

	gapOK := func() bool {
		if math.IsInf(res.Objective, 1) {
			return false
		}
		if res.Objective == 0 {
			return res.Bound >= -1e-9
		}
		return (res.Objective-res.Bound)/math.Abs(res.Objective) <= opts.Gap+1e-12
	}

	for len(open) > 0 {
		if !opts.Deadline.IsZero() && time.Now().After(opts.Deadline) {
			res.DNF = true
			break
		}
		if opts.MaxNodes > 0 && res.Nodes >= opts.MaxNodes {
			res.DNF = true
			break
		}
		lowest := math.Inf(1)
		for i := range open {
			if open[i].bound < lowest {
				lowest = open[i].bound
			}
		}
		if lowest > res.Bound {
			res.Bound = math.Min(lowest, res.Objective)
		}
		if gapOK() {
			break
		}

		nd := popBest()
		if nd.bound >= res.Objective-1e-12 {
			continue // dominated by incumbent
		}
		sol, err := denseSolveWithExtra(m, nd.extra, opts.Deadline)
		if err != nil {
			return nil, err
		}
		if sol.Status == IterationLimit && !opts.Deadline.IsZero() && time.Now().After(opts.Deadline) {
			res.DNF = true
			break
		}
		res.Nodes++
		iters += sol.Iterations
		if sol.Status != Optimal || sol.Objective >= res.Objective-1e-12 {
			continue
		}
		if obj, x, ok := floorFeasible(m, sol.X); ok && obj < res.Objective-1e-12 {
			res.Solution = Solution{Status: Optimal, X: x, Objective: obj}
		}
		branch := -1
		worst := 1e-6
		for i := 0; i < m.NumVars(); i++ {
			if !m.Integer(i) {
				continue
			}
			f := sol.X[i] - math.Floor(sol.X[i])
			if d := math.Min(f, 1-f); d > worst {
				worst, branch = d, i
			}
		}
		if branch == -1 {
			res.Solution = *sol
			res.Solution.Iterations = iters
			continue
		}
		v := sol.X[branch]
		down := append(append([]Constraint(nil), nd.extra...),
			Constraint{Cols: []int32{int32(branch)}, Vals: []float64{1}, Sense: LE, RHS: math.Floor(v)})
		up := append(append([]Constraint(nil), nd.extra...),
			Constraint{Cols: []int32{int32(branch)}, Vals: []float64{1}, Sense: GE, RHS: math.Ceil(v)})
		open = append(open, node{down, sol.Objective}, node{up, sol.Objective})
	}

	if len(open) == 0 && !res.DNF {
		if !math.IsInf(res.Objective, 1) {
			res.Bound = res.Objective
		}
	}
	if !math.IsInf(res.Objective, 1) {
		res.Gap = 0
		if res.Objective != 0 {
			res.Gap = (res.Objective - res.Bound) / math.Abs(res.Objective)
		}
		if res.Gap < 0 {
			res.Gap = 0
		}
	} else {
		res.Gap = math.Inf(1)
	}
	res.Iterations = iters
	return res, nil
}
