package lp

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"
)

// randomLP builds a random bounded LP with mixed senses: feasible-by-design
// rows sometimes, plainly conflicting rows occasionally. The generator is
// deterministic per seed so failures reproduce.
func randomLP(seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	m := NewModel()
	n := 4 + rng.Intn(10)
	for j := 0; j < n; j++ {
		obj := math.Round(rng.NormFloat64()*40) / 10
		upper := math.Inf(1)
		if rng.Intn(2) == 0 {
			upper = float64(1 + rng.Intn(5))
		}
		m.AddVar(obj, fmt.Sprintf("x%d", j), upper, false)
	}
	rows := 3 + rng.Intn(8)
	for i := 0; i < rows; i++ {
		coeffs := map[int]float64{}
		terms := 1 + rng.Intn(4)
		for k := 0; k < terms; k++ {
			coeffs[rng.Intn(n)] = math.Round(rng.NormFloat64()*30) / 10
		}
		sense := Sense(rng.Intn(3))
		rhs := math.Round(rng.NormFloat64()*80) / 10
		m.AddConstraint(coeffs, sense, rhs)
	}
	return m
}

// TestSparseMatchesDenseOnRandomLPs is the differential safety net: the
// sparse revised simplex and the retained dense tableau solver must agree
// on status and (when optimal) objective over a corpus of random LPs.
func TestSparseMatchesDenseOnRandomLPs(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		m := randomLP(seed)
		sparse, err := SolveLP(m)
		if err != nil {
			t.Fatalf("seed %d: sparse: %v", seed, err)
		}
		dense, err := denseSolveLP(m)
		if err != nil {
			t.Fatalf("seed %d: dense: %v", seed, err)
		}
		if sparse.Status == IterationLimit || dense.Status == IterationLimit {
			continue
		}
		if sparse.Status != dense.Status {
			t.Fatalf("seed %d: sparse %v vs dense %v", seed, sparse.Status, dense.Status)
		}
		if sparse.Status != Optimal {
			continue
		}
		tol := 1e-6 * (1 + math.Abs(dense.Objective))
		if !approx(sparse.Objective, dense.Objective, tol) {
			t.Fatalf("seed %d: objective sparse %v vs dense %v", seed, sparse.Objective, dense.Objective)
		}
	}
}

// TestEqualityOnlyModel exercises the dual phase-1 path: equality rows make
// the slack basis both primal and dual infeasible for general costs.
func TestEqualityOnlyModel(t *testing.T) {
	// min -x + y s.t. x + y = 4, x - y = 1 -> x=2.5, y=1.5, obj -1.
	m := NewModel()
	x := m.AddVar(-1, "x", math.Inf(1), false)
	y := m.AddVar(1, "y", math.Inf(1), false)
	m.AddConstraint(map[int]float64{x: 1, y: 1}, EQ, 4)
	m.AddConstraint(map[int]float64{x: 1, y: -1}, EQ, 1)
	sol, err := SolveLP(m)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approx(sol.Objective, -1, 1e-7) {
		t.Fatalf("got %v obj %v, want optimal -1", sol.Status, sol.Objective)
	}
	if !approx(sol.X[x], 2.5, 1e-7) || !approx(sol.X[y], 1.5, 1e-7) {
		t.Fatalf("solution (%v, %v), want (2.5, 1.5)", sol.X[x], sol.X[y])
	}
}

// TestEqualityOnlyInfeasible: contradictory equalities must be detected.
func TestEqualityOnlyInfeasible(t *testing.T) {
	m := NewModel()
	x := m.AddVar(1, "x", math.Inf(1), false)
	m.AddConstraint(map[int]float64{x: 1}, EQ, 2)
	m.AddConstraint(map[int]float64{x: 1}, EQ, 3)
	sol, err := SolveLP(m)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

// TestUnboundedWithConstraints: a constrained but unbounded direction.
func TestUnboundedWithConstraints(t *testing.T) {
	// min -x s.t. x - y <= 1: x can grow with y.
	m := NewModel()
	x := m.AddVar(-1, "x", math.Inf(1), false)
	y := m.AddVar(0, "y", math.Inf(1), false)
	m.AddConstraint(map[int]float64{x: 1, y: -1}, LE, 1)
	sol, err := SolveLP(m)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

// TestBealeCyclingLP is the anti-cycling regression: Beale's classic
// example cycles forever under naive Dantzig pricing with textbook
// tie-breaking. The stall detector must switch to Bland's rule and finish
// at the optimum -0.05.
func TestBealeCyclingLP(t *testing.T) {
	m := NewModel()
	x1 := m.AddVar(-0.75, "x1", math.Inf(1), false)
	x2 := m.AddVar(150, "x2", math.Inf(1), false)
	x3 := m.AddVar(-0.02, "x3", math.Inf(1), false)
	x4 := m.AddVar(6, "x4", math.Inf(1), false)
	m.AddConstraint(map[int]float64{x1: 0.25, x2: -60, x3: -0.04, x4: 9}, LE, 0)
	m.AddConstraint(map[int]float64{x1: 0.5, x2: -90, x3: -0.02, x4: 3}, LE, 0)
	m.AddConstraint(map[int]float64{x3: 1}, LE, 1)
	sol, err := SolveLP(m)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approx(sol.Objective, -0.05, 1e-9) {
		t.Fatalf("got %v obj %v after %d iters, want optimal -0.05",
			sol.Status, sol.Objective, sol.Iterations)
	}
}

// TestWarmStartMatchesColdSolve checks the branch-and-bound re-solve
// protocol: fixing variable bounds and re-solving from the parent basis by
// dual simplex must reach the same optimum as a cold solve with the same
// fixes.
func TestWarmStartMatchesColdSolve(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		m := randomLP(seed)
		// Make every variable's range finite so fixes below are valid.
		for j := range m.upper {
			if math.IsInf(m.upper[j], 1) {
				m.upper[j] = float64(2 + rng.Intn(4))
			}
		}
		p := compile(m)
		warm := newSparseSolver(p)
		warm.reset(nil, nil)
		if warm.optimize(time.Time{}) != Optimal {
			continue
		}
		snap := warm.snapshot()

		var fixes []boundFix
		for k := 0; k < 1+rng.Intn(3); k++ {
			v := int32(rng.Intn(p.n))
			if rng.Intn(2) == 0 {
				fixes = append(fixes, boundFix{v, 0, 0})
			} else {
				fixes = append(fixes, boundFix{v, p.up[v], p.up[v]})
			}
		}

		warm.reset(fixes, snap)
		warmStatus := warm.optimize(time.Time{})

		cold := newSparseSolver(p)
		cold.reset(fixes, nil)
		coldStatus := cold.optimize(time.Time{})

		if warmStatus != coldStatus {
			t.Fatalf("seed %d: warm %v vs cold %v", seed, warmStatus, coldStatus)
		}
		if warmStatus != Optimal {
			continue
		}
		wObj, cObj := warm.objValue(), cold.objValue()
		tol := 1e-6 * (1 + math.Abs(cObj))
		if !approx(wObj, cObj, tol) {
			t.Fatalf("seed %d: warm obj %v vs cold obj %v", seed, wObj, cObj)
		}
	}
}
