// Package lp provides a small, self-contained linear-programming toolkit:
// a sparse model builder, a dense two-phase primal simplex solver, and a
// branch-and-bound mixed-integer layer with optimality-gap and deadline
// control.
//
// It is the stand-in for the commercial solver (CPLEX via NEOS) that the
// paper uses to run CoPhy's integer linear program (5)-(8). The package is
// deliberately sized for the instances where an explicit LP is sensible;
// package cophy switches to a specialized combinatorial branch-and-bound for
// instances whose explicit LP would be impractically large — mirroring the
// paper's observation that solver-based approaches stop scaling.
package lp

import (
	"fmt"
	"math"
	"time"
)

// Sense is a constraint comparison direction.
type Sense int

const (
	// LE is <=.
	LE Sense = iota
	// GE is >=.
	GE
	// EQ is =.
	EQ
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return fmt.Sprintf("Sense(%d)", int(s))
	}
}

// Constraint is a sparse linear constraint sum(coeff_i * x_i) <sense> rhs.
type Constraint struct {
	Coeffs map[int]float64
	Sense  Sense
	RHS    float64
}

// Model is a minimization problem over non-negative variables.
type Model struct {
	obj     []float64
	upper   []float64 // +Inf when unbounded above
	integer []bool
	names   []string
	cons    []Constraint
}

// NewModel returns an empty model.
func NewModel() *Model { return &Model{} }

// AddVar adds a variable with the given objective coefficient, name, upper
// bound (use math.Inf(1) for none) and integrality flag, returning its index.
// All variables are bounded below by zero.
func (m *Model) AddVar(obj float64, name string, upper float64, integer bool) int {
	m.obj = append(m.obj, obj)
	m.upper = append(m.upper, upper)
	m.integer = append(m.integer, integer)
	m.names = append(m.names, name)
	return len(m.obj) - 1
}

// AddConstraint appends a constraint. Coefficient maps are not copied;
// callers must not modify them afterwards.
func (m *Model) AddConstraint(coeffs map[int]float64, sense Sense, rhs float64) {
	m.cons = append(m.cons, Constraint{Coeffs: coeffs, Sense: sense, RHS: rhs})
}

// NumVars returns the number of variables.
func (m *Model) NumVars() int { return len(m.obj) }

// NumConstraints returns the number of constraints (finite upper bounds
// excluded — they are handled as simple bounds by the solver).
func (m *Model) NumConstraints() int { return len(m.cons) }

// Name returns the name of variable i.
func (m *Model) Name(i int) string { return m.names[i] }

// Integer reports whether variable i is integral.
func (m *Model) Integer(i int) bool { return m.integer[i] }

// Status reports the outcome of a solve.
type Status int

const (
	// Optimal means an optimal solution was found.
	Optimal Status = iota
	// Infeasible means no feasible point exists.
	Infeasible
	// Unbounded means the objective decreases without bound.
	Unbounded
	// IterationLimit means the simplex hit its iteration cap.
	IterationLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterationLimit:
		return "iteration-limit"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Solution is the result of an LP solve.
type Solution struct {
	Status     Status
	X          []float64
	Objective  float64
	Iterations int
}

const eps = 1e-9

// SolveLP solves the LP relaxation of m (integrality ignored) with a dense
// two-phase primal simplex. Finite upper bounds become explicit constraints.
func SolveLP(m *Model) (*Solution, error) {
	return solveWithExtra(m, nil, time.Time{})
}

// solveWithExtra solves m plus the given extra constraints (used by branch
// and bound to fix/bound branching variables without copying the model).
// A non-zero deadline aborts mid-solve with IterationLimit — large dense
// tableaus can otherwise blow far past a caller's time budget within a
// single solve.
func solveWithExtra(m *Model, extra []Constraint, deadline time.Time) (*Solution, error) {
	n := m.NumVars()
	if n == 0 {
		return &Solution{Status: Optimal, X: nil, Objective: 0}, nil
	}
	cons := make([]Constraint, 0, len(m.cons)+len(extra)+n)
	cons = append(cons, m.cons...)
	cons = append(cons, extra...)
	for i, u := range m.upper {
		if !math.IsInf(u, 1) {
			cons = append(cons, Constraint{Coeffs: map[int]float64{i: 1}, Sense: LE, RHS: u})
		}
	}
	t := newTableau(m.obj, cons)
	t.deadline = deadline
	sol := t.solve()
	if sol.Status == Optimal {
		sol.X = sol.X[:n]
	}
	return sol, nil
}

// tableau is a dense simplex tableau in standard form.
type tableau struct {
	rows, cols int // constraint rows, total columns incl. slack/artificial
	nStruct    int // structural variables
	a          [][]float64
	rhs        []float64
	obj        []float64 // phase-2 objective over all columns
	basis      []int
	artStart   int // first artificial column
	iters      int
	z          []float64 // maintained reduced-cost row for the active objective
	zval       float64   // maintained objective value (negated convention not used)
	deadline   time.Time // zero = none; checked periodically during pivoting
}

const maxIters = 200_000

func newTableau(obj []float64, cons []Constraint) *tableau {
	n := len(obj)
	mRows := len(cons)

	// Count auxiliary columns.
	slacks := 0
	arts := 0
	for _, c := range cons {
		rhs := c.RHS
		sense := c.Sense
		if rhs < 0 {
			// Row will be negated; flips LE<->GE.
			switch sense {
			case LE:
				sense = GE
			case GE:
				sense = LE
			}
		}
		switch sense {
		case LE:
			slacks++
		case GE:
			slacks++
			arts++
		case EQ:
			arts++
		}
	}
	cols := n + slacks + arts
	t := &tableau{
		rows:     mRows,
		cols:     cols,
		nStruct:  n,
		a:        make([][]float64, mRows),
		rhs:      make([]float64, mRows),
		obj:      make([]float64, cols),
		basis:    make([]int, mRows),
		artStart: n + slacks,
	}
	copy(t.obj, obj)

	slackCol := n
	artCol := n + slacks
	for i, c := range cons {
		row := make([]float64, cols)
		sign := 1.0
		rhs := c.RHS
		sense := c.Sense
		if rhs < 0 {
			sign, rhs = -1, -rhs
			switch sense {
			case LE:
				sense = GE
			case GE:
				sense = LE
			}
		}
		for j, v := range c.Coeffs {
			row[j] += sign * v
		}
		switch sense {
		case LE:
			row[slackCol] = 1
			t.basis[i] = slackCol
			slackCol++
		case GE:
			row[slackCol] = -1
			slackCol++
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		case EQ:
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		}
		t.a[i] = row
		t.rhs[i] = rhs
	}
	return t
}

// solve runs phase 1 (if artificials exist) then phase 2.
func (t *tableau) solve() *Solution {
	if t.artStart < t.cols {
		phase1 := make([]float64, t.cols)
		for j := t.artStart; j < t.cols; j++ {
			phase1[j] = 1
		}
		status := t.optimize(phase1, true)
		if status != Optimal {
			return &Solution{Status: status, Iterations: t.iters}
		}
		if t.objectiveValue(phase1) > 1e-7 {
			return &Solution{Status: Infeasible, Iterations: t.iters}
		}
		t.driveOutArtificials()
	}
	status := t.optimize(t.obj, false)
	if status != Optimal {
		return &Solution{Status: status, Iterations: t.iters}
	}
	x := make([]float64, t.cols)
	for i, b := range t.basis {
		x[b] = t.rhs[i]
	}
	return &Solution{
		Status:     Optimal,
		X:          x,
		Objective:  t.objectiveValue(t.obj),
		Iterations: t.iters,
	}
}

func (t *tableau) objectiveValue(obj []float64) float64 {
	var v float64
	for i, b := range t.basis {
		v += obj[b] * t.rhs[i]
	}
	return v
}

// setObjective initializes the maintained reduced-cost row
// obj_j - c_B * B^-1 A_j for the current basis. banArtificials pins
// artificial columns' reduced costs at zero so they never re-enter
// (phase 2).
func (t *tableau) setObjective(obj []float64, banArtificials bool) {
	rc := make([]float64, t.cols)
	copy(rc, obj)
	for i, b := range t.basis {
		cb := obj[b]
		if cb == 0 {
			continue
		}
		row := t.a[i]
		for j := 0; j < t.cols; j++ {
			rc[j] -= cb * row[j]
		}
	}
	if banArtificials {
		for j := t.artStart; j < t.cols; j++ {
			rc[j] = 0
		}
	}
	t.z = rc
	t.zval = t.objectiveValue(obj)
}

// optimize runs primal simplex iterations for the given objective.
// In phase 2 artificial columns are excluded from entering the basis: the
// maintained reduced-cost row is updated by pivots, so a one-time pin at
// setObjective would not survive.
func (t *tableau) optimize(obj []float64, isPhase1 bool) Status {
	t.setObjective(obj, !isPhase1)
	scanCols := t.cols
	if !isPhase1 {
		scanCols = t.artStart
	}
	for ; t.iters < maxIters; t.iters++ {
		if t.iters&1023 == 0 && !t.deadline.IsZero() && time.Now().After(t.deadline) {
			return IterationLimit
		}
		rc := t.z
		// Entering column: Dantzig rule early, Bland's rule when degenerate
		// cycling becomes a risk.
		useBland := t.iters > 10_000
		enter := -1
		best := -eps
		for j := 0; j < scanCols; j++ {
			if rc[j] < -eps {
				if useBland {
					enter = j
					break
				}
				if rc[j] < best {
					best, enter = rc[j], j
				}
			}
		}
		if enter == -1 {
			return Optimal
		}
		// Ratio test.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.rows; i++ {
			if t.a[i][enter] > eps {
				r := t.rhs[i] / t.a[i][enter]
				if r < bestRatio-eps || (r < bestRatio+eps && (leave == -1 || t.basis[i] < t.basis[leave])) {
					bestRatio, leave = r, i
				}
			}
		}
		if leave == -1 {
			return Unbounded
		}
		t.pivot(leave, enter)
	}
	return IterationLimit
}

func (t *tableau) pivot(row, col int) {
	p := t.a[row][col]
	inv := 1 / p
	for j := 0; j < t.cols; j++ {
		t.a[row][j] *= inv
	}
	t.rhs[row] *= inv
	for i := 0; i < t.rows; i++ {
		if i == row {
			continue
		}
		f := t.a[i][col]
		if f == 0 {
			continue
		}
		rowData := t.a[row]
		target := t.a[i]
		for j := 0; j < t.cols; j++ {
			target[j] -= f * rowData[j]
		}
		t.rhs[i] -= f * t.rhs[row]
		if t.rhs[i] < 0 && t.rhs[i] > -1e-11 {
			t.rhs[i] = 0
		}
	}
	if t.z != nil {
		if f := t.z[col]; f != 0 {
			rowData := t.a[row]
			for j := 0; j < t.cols; j++ {
				t.z[j] -= f * rowData[j]
			}
			t.zval += f * t.rhs[row]
		}
	}
	t.basis[row] = col
}

// driveOutArtificials pivots basic artificial variables out of the basis
// (possible at zero level after a feasible phase 1), so phase 2 ignores them.
func (t *tableau) driveOutArtificials() {
	for i := 0; i < t.rows; i++ {
		if t.basis[i] < t.artStart {
			continue
		}
		for j := 0; j < t.artStart; j++ {
			if math.Abs(t.a[i][j]) > eps {
				t.pivot(i, j)
				break
			}
		}
		// If no pivot column exists the row is redundant; the artificial
		// stays basic at zero, which is harmless for phase 2.
	}
}
