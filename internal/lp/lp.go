// Package lp provides a self-contained linear-programming toolkit: a sparse
// model builder, a sparse revised simplex solver (bounded variables,
// product-form basis updates with periodic refactorization, primal and dual
// iterations), and a warm-started parallel branch-and-bound mixed-integer
// layer with optimality-gap and deadline control.
//
// It is the stand-in for the commercial solver (CPLEX via NEOS) that the
// paper uses to run CoPhy's integer linear program (5)-(8). Child nodes of
// the branch-and-bound re-solve from the parent basis via dual simplex
// (branching changes only variable bounds, which preserves dual
// feasibility), so node throughput is dominated by a handful of pivots per
// node rather than a from-scratch solve. The original dense two-phase
// tableau solver is retained in dense.go as the differential-testing and
// benchmarking baseline.
package lp

import (
	"fmt"
	"sort"
	"time"
)

// Sense is a constraint comparison direction.
type Sense int

const (
	// LE is <=.
	LE Sense = iota
	// GE is >=.
	GE
	// EQ is =.
	EQ
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return fmt.Sprintf("Sense(%d)", int(s))
	}
}

// Constraint is a sparse linear constraint sum(Vals_i * x_Cols_i) <Sense> RHS.
// Duplicate column entries accumulate.
type Constraint struct {
	Cols  []int32
	Vals  []float64
	Sense Sense
	RHS   float64
}

// Model is a minimization problem over non-negative variables.
type Model struct {
	obj     []float64
	upper   []float64 // +Inf when unbounded above
	integer []bool
	names   []string
	cons    []Constraint
	nnz     int
}

// NewModel returns an empty model.
func NewModel() *Model { return &Model{} }

// AddVar adds a variable with the given objective coefficient, name, upper
// bound (use math.Inf(1) for none) and integrality flag, returning its index.
// All variables are bounded below by zero.
func (m *Model) AddVar(obj float64, name string, upper float64, integer bool) int {
	m.obj = append(m.obj, obj)
	m.upper = append(m.upper, upper)
	m.integer = append(m.integer, integer)
	m.names = append(m.names, name)
	return len(m.obj) - 1
}

// AddConstraint appends a constraint given as a coefficient map. The map is
// converted to sorted sparse-slice form (so solver arithmetic is independent
// of map iteration order) and not retained.
func (m *Model) AddConstraint(coeffs map[int]float64, sense Sense, rhs float64) {
	cols := make([]int32, 0, len(coeffs))
	for j := range coeffs {
		cols = append(cols, int32(j))
	}
	sort.Slice(cols, func(a, b int) bool { return cols[a] < cols[b] })
	vals := make([]float64, len(cols))
	for i, j := range cols {
		vals[i] = coeffs[int(j)]
	}
	m.AddConstraintCols(cols, vals, sense, rhs)
}

// AddConstraintCols appends a constraint in sparse (column, value) form.
// The slices are retained without copying; callers must not modify them
// afterwards. This is the allocation-lean path for large models (CoPhy's
// per-(query, candidate) rows).
func (m *Model) AddConstraintCols(cols []int32, vals []float64, sense Sense, rhs float64) {
	m.cons = append(m.cons, Constraint{Cols: cols, Vals: vals, Sense: sense, RHS: rhs})
	m.nnz += len(cols)
}

// NumVars returns the number of variables.
func (m *Model) NumVars() int { return len(m.obj) }

// NumConstraints returns the number of constraints (finite upper bounds
// excluded — they are handled as simple bounds by the solver).
func (m *Model) NumConstraints() int { return len(m.cons) }

// Name returns the name of variable i.
func (m *Model) Name(i int) string { return m.names[i] }

// Integer reports whether variable i is integral.
func (m *Model) Integer(i int) bool { return m.integer[i] }

// Status reports the outcome of a solve.
type Status int

const (
	// Optimal means an optimal solution was found.
	Optimal Status = iota
	// Infeasible means no feasible point exists.
	Infeasible
	// Unbounded means the objective decreases without bound.
	Unbounded
	// IterationLimit means the simplex hit its iteration cap or deadline.
	IterationLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterationLimit:
		return "iteration-limit"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Solution is the result of an LP solve.
type Solution struct {
	Status     Status
	X          []float64
	Objective  float64
	Iterations int
	// RowDuals, populated on Optimal solves, holds one dual multiplier per
	// model constraint in original (unscaled) row units, with the sign
	// convention of "reduced cost = obj − yᵀA": for this minimization a
	// binding ≤ row has y ≤ 0 and a binding ≥ row has y ≥ 0. Callers use
	// these for column-generation pricing and Lagrangian bounds.
	RowDuals []float64
}

const eps = 1e-9

// SolveLP solves the LP relaxation of m (integrality ignored) with the
// sparse revised simplex. Finite upper bounds are handled as variable
// bounds, not rows.
func SolveLP(m *Model) (*Solution, error) {
	if m.NumVars() == 0 {
		return &Solution{Status: Optimal, X: nil, Objective: 0}, nil
	}
	p := compile(m)
	s := newSparseSolver(p)
	s.reset(nil, nil)
	sol := s.solve(time.Time{})
	return sol, nil
}

// objectiveOf evaluates the model objective at x (structural variables).
func (m *Model) objectiveOf(x []float64) float64 {
	var v float64
	for i, c := range m.obj {
		if c != 0 {
			v += c * x[i]
		}
	}
	return v
}
