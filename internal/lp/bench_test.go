package lp

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"
)

// benchCoPhyModel builds a synthetic instance with the CoPhy BIP shape of
// eqs. (5)-(8): binary x_k per candidate, per-query assignment variables
// z_{q,k} with sum_k z = 1 and z <= x variable-upper-bound rows, and one
// memory-budget knapsack. The budget sits at ~40% of total candidate size so
// the relaxation stays fractional and the search must branch.
func benchCoPhyModel(queries, cands, perQuery int) *Model {
	rng := rand.New(rand.NewSource(42))
	m := NewModel()
	xVar := make([]int, cands)
	sizes := make([]float64, cands)
	var total float64
	for k := 0; k < cands; k++ {
		xVar[k] = m.AddVar(0.1+rng.Float64(), fmt.Sprintf("x%d", k), 1, true)
		sizes[k] = math.Round((1 + rng.Float64()*9) * 10)
		total += sizes[k]
	}
	pairVals := []float64{1, -1}
	ones := make([]float64, perQuery+1)
	for i := range ones {
		ones[i] = 1
	}
	for q := 0; q < queries; q++ {
		freq := 1 + rng.Float64()*4
		base := 50 + rng.Float64()*50
		row := []int32{int32(m.AddVar(freq*base, fmt.Sprintf("z%d_0", q), 1, false))}
		for k := 0; k < perQuery; k++ {
			cand := rng.Intn(cands)
			z := m.AddVar(freq*base*(0.1+0.8*rng.Float64()), fmt.Sprintf("z%d_%d", q, k+1), 1, false)
			row = append(row, int32(z))
			m.AddConstraintCols([]int32{int32(z), int32(xVar[cand])}, pairVals, LE, 0)
		}
		m.AddConstraintCols(row, ones[:len(row)], EQ, 1)
	}
	memCols := make([]int32, cands)
	for k := range xVar {
		memCols[k] = int32(xVar[k])
	}
	m.AddConstraintCols(memCols, sizes, LE, math.Round(total*0.4))
	return m
}

// benchMIPNodes runs one solver over the shared instance and reports
// branch-and-bound node throughput, the headline metric BENCH_lp.json tracks
// across PRs (sparse warm-started B&B vs the retained dense cold-start seed).
func benchMIPNodes(b *testing.B, solve func(*Model) (*MIPResult, error)) {
	m := benchCoPhyModel(30, 20, 8)
	b.ResetTimer()
	nodes := 0
	start := time.Now()
	for i := 0; i < b.N; i++ {
		res, err := solve(m)
		if err != nil {
			b.Fatal(err)
		}
		if res.Status != Optimal {
			b.Fatalf("status %v, want optimal", res.Status)
		}
		nodes += res.Nodes
	}
	b.ReportMetric(float64(nodes)/time.Since(start).Seconds(), "nodes/s")
	b.ReportMetric(float64(nodes)/float64(b.N), "nodes/op")
}

func BenchmarkMIPSparse(b *testing.B) {
	benchMIPNodes(b, func(m *Model) (*MIPResult, error) {
		return SolveMIP(m, MIPOptions{Parallelism: 1})
	})
}

func BenchmarkMIPDense(b *testing.B) {
	benchMIPNodes(b, func(m *Model) (*MIPResult, error) {
		return denseSolveMIP(m, MIPOptions{})
	})
}
