package heuristics

import (
	"math"
	"testing"

	"repro/internal/candidates"
	"repro/internal/costmodel"
	"repro/internal/whatif"
	"repro/internal/workload"
)

func gen(t *testing.T, tables, attrs, queries int, rows int64, seed int64) *workload.Workload {
	t.Helper()
	cfg := workload.DefaultGenConfig()
	cfg.Tables, cfg.AttrsPerTable, cfg.QueriesPerTable = tables, attrs, queries
	cfg.RowsBase, cfg.Seed = rows, seed
	return workload.MustGenerate(cfg)
}

func setup(w *workload.Workload) (*costmodel.Model, *whatif.Optimizer) {
	m := costmodel.New(w, costmodel.SingleIndex)
	return m, whatif.New(m)
}

func allCandidates(t *testing.T, w *workload.Workload, maxWidth int) []workload.Index {
	t.Helper()
	combos, err := candidates.Combos(w, maxWidth)
	if err != nil {
		t.Fatal(err)
	}
	return candidates.Representatives(w, combos)
}

func TestAllRulesFeasibleAndConsistent(t *testing.T) {
	w := gen(t, 2, 12, 30, 50_000, 3)
	m, opt := setup(w)
	cands := allCandidates(t, w, 2)
	budget := m.Budget(0.3)
	for _, rule := range []Rule{H1, H2, H3, H4, H5} {
		res, err := Select(w, opt, cands, rule, Options{Budget: budget})
		if err != nil {
			t.Fatalf("%v: %v", rule, err)
		}
		if res.Memory > budget {
			t.Errorf("%v: memory %d exceeds budget %d", rule, res.Memory, budget)
		}
		if got := m.TotalSize(res.Selection); got != res.Memory {
			t.Errorf("%v: memory %d != model %d", rule, res.Memory, got)
		}
		if got := m.TotalCost(res.Selection); math.Abs(got-res.Cost) > 1e-6*got {
			t.Errorf("%v: cost %v != model %v", rule, res.Cost, got)
		}
		if res.Cost > m.TotalCost(workload.NewSelection()) {
			t.Errorf("%v: selection worse than no indexes", rule)
		}
	}
}

func TestH1PrefersFrequent(t *testing.T) {
	// Two single-attribute candidates; one attribute is queried far more.
	tables := []workload.Table{{ID: 0, Name: "T", Rows: 10_000, Attrs: []int{0, 1}}}
	attrs := []workload.Attribute{
		{ID: 0, Table: 0, Name: "hot", Distinct: 100, ValueSize: 4},
		{ID: 1, Table: 0, Name: "cold", Distinct: 100, ValueSize: 4},
	}
	queries := []workload.Query{
		{ID: 0, Table: 0, Attrs: []int{0}, Freq: 1000},
		{ID: 1, Table: 0, Attrs: []int{1}, Freq: 1},
	}
	w, err := workload.New(tables, attrs, queries)
	if err != nil {
		t.Fatal(err)
	}
	m, opt := setup(w)
	cands := []workload.Index{workload.MustIndex(w, 0), workload.MustIndex(w, 1)}
	// Budget for exactly one index.
	budget := m.IndexSize(cands[0])
	res, err := Select(w, opt, cands, H1, Options{Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Selection.Has(cands[0]) || res.Selection.Has(cands[1]) {
		t.Errorf("H1 picked %v, want only the hot attribute", res.Selection.Sorted())
	}
}

func TestH2PrefersSelective(t *testing.T) {
	tables := []workload.Table{{ID: 0, Name: "T", Rows: 10_000, Attrs: []int{0, 1}}}
	attrs := []workload.Attribute{
		{ID: 0, Table: 0, Name: "coarse", Distinct: 2, ValueSize: 4},
		{ID: 1, Table: 0, Name: "fine", Distinct: 5000, ValueSize: 4},
	}
	queries := []workload.Query{
		{ID: 0, Table: 0, Attrs: []int{0}, Freq: 10},
		{ID: 1, Table: 0, Attrs: []int{1}, Freq: 10},
	}
	w, err := workload.New(tables, attrs, queries)
	if err != nil {
		t.Fatal(err)
	}
	m, opt := setup(w)
	cands := []workload.Index{workload.MustIndex(w, 0), workload.MustIndex(w, 1)}
	budget := m.IndexSize(cands[1])
	res, err := Select(w, opt, cands, H2, Options{Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Selection.Has(cands[1]) {
		t.Errorf("H2 did not pick the selective attribute: %v", res.Selection.Sorted())
	}
}

func TestH4PicksBestBenefit(t *testing.T) {
	w := gen(t, 1, 10, 20, 50_000, 5)
	m, opt := setup(w)
	cands := allCandidates(t, w, 1)
	// Budget for one index: H4 must take the max-benefit candidate that fits.
	var best workload.Index
	bestBen := -1.0
	for _, k := range cands {
		if b := Benefit(w, opt, k); b > bestBen {
			bestBen, best = b, k
		}
	}
	res, err := Select(w, opt, cands, H4, Options{Budget: m.IndexSize(best)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Selection.Has(best) {
		t.Errorf("H4 missed the best-benefit candidate %v; got %v", best, res.Selection.Sorted())
	}
}

func TestH5RatioBeatsH4UnderTightBudget(t *testing.T) {
	// A huge moderately-useful index vs several small useful ones: H4 takes
	// the big one; H5's cost/size ratio packs small ones. Construct directly.
	tables := []workload.Table{{ID: 0, Name: "T", Rows: 100_000, Attrs: []int{0, 1, 2, 3}}}
	attrs := []workload.Attribute{
		{ID: 0, Table: 0, Name: "big", Distinct: 300, ValueSize: 16},
		{ID: 1, Table: 0, Name: "s1", Distinct: 300, ValueSize: 1},
		{ID: 2, Table: 0, Name: "s2", Distinct: 300, ValueSize: 1},
		{ID: 3, Table: 0, Name: "s3", Distinct: 300, ValueSize: 1},
	}
	queries := []workload.Query{
		{ID: 0, Table: 0, Attrs: []int{0}, Freq: 40},
		{ID: 1, Table: 0, Attrs: []int{1}, Freq: 400},
		{ID: 2, Table: 0, Attrs: []int{2}, Freq: 400},
		{ID: 3, Table: 0, Attrs: []int{3}, Freq: 400},
	}
	w, err := workload.New(tables, attrs, queries)
	if err != nil {
		t.Fatal(err)
	}
	m, opt := setup(w)
	var cands []workload.Index
	for i := 0; i < 4; i++ {
		cands = append(cands, workload.MustIndex(w, i))
	}
	budget := m.IndexSize(cands[0]) // fits the big one, or all three small ones
	h4, err := Select(w, opt, cands, H4, Options{Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	h5, err := Select(w, opt, cands, H5, Options{Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	if !h4.Selection.Has(cands[0]) {
		t.Errorf("H4 should pick the big high-benefit index; got %v", h4.Selection.Sorted())
	}
	if h5.Selection.Has(cands[0]) {
		t.Errorf("H5 should prefer the small indexes; got %v", h5.Selection.Sorted())
	}
	if h5.Cost > h4.Cost {
		t.Errorf("expected H5 (%v) to beat H4 (%v) under this budget", h5.Cost, h4.Cost)
	}
}

func TestSkylineFilterKeepsPerQueryBest(t *testing.T) {
	w := gen(t, 2, 10, 25, 50_000, 7)
	_, opt := setup(w)
	cands := allCandidates(t, w, 2)
	kept := SkylineFilter(w, opt, cands)
	if len(kept) == 0 || len(kept) >= len(cands) {
		t.Fatalf("skyline kept %d of %d candidates", len(kept), len(cands))
	}
	// The per-query cheapest candidate always survives.
	for _, q := range w.Queries {
		var best workload.Index
		bestCost := opt.BaseCost(q)
		found := false
		for _, k := range cands {
			if !workload.Applicable(q, k) {
				continue
			}
			if c := opt.CostWithIndex(q, k); c < bestCost {
				bestCost, best, found = c, k, true
			}
		}
		if !found {
			continue
		}
		has := false
		for _, k := range kept {
			if k.Key() == best.Key() {
				has = true
				break
			}
		}
		if !has {
			t.Errorf("skyline dropped query %d's best candidate %v", q.ID, best)
		}
	}
}

func TestSkylineOptionReducesConsidered(t *testing.T) {
	w := gen(t, 2, 10, 25, 50_000, 9)
	m, opt := setup(w)
	cands := allCandidates(t, w, 2)
	plain, err := Select(w, opt, cands, H4, Options{Budget: m.Budget(0.3)})
	if err != nil {
		t.Fatal(err)
	}
	sky, err := Select(w, opt, cands, H4, Options{Budget: m.Budget(0.3), Skyline: true})
	if err != nil {
		t.Fatal(err)
	}
	if sky.Considered >= plain.Considered {
		t.Errorf("skyline considered %d, plain %d", sky.Considered, plain.Considered)
	}
}

func TestValidation(t *testing.T) {
	w := gen(t, 1, 5, 5, 1000, 1)
	_, opt := setup(w)
	if _, err := Select(w, opt, nil, H1, Options{}); err == nil {
		t.Error("accepted zero budget")
	}
	if _, err := Select(w, opt, nil, Rule(0), Options{Budget: 1}); err == nil {
		t.Error("accepted unknown rule")
	}
	if _, err := Select(w, opt, nil, Rule(9), Options{Budget: 1}); err == nil {
		t.Error("accepted unknown rule 9")
	}
}

func TestRuleString(t *testing.T) {
	want := map[Rule]string{H1: "H1", H2: "H2", H3: "H3", H4: "H4", H5: "H5"}
	for r, s := range want {
		if r.String() != s {
			t.Errorf("Rule(%d).String() = %q, want %q", int(r), r.String(), s)
		}
	}
	if Rule(42).String() == "" {
		t.Error("unknown rule string empty")
	}
}
