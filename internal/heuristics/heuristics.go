// Package heuristics implements the rule-based and performance-based index
// selection heuristics H1-H5 of the paper's Definition 1:
//
//	H1: most frequently used attributes (occurrences g_i)
//	H2: smallest selectivity
//	H3: smallest selectivity-to-occurrences ratio
//	H4: best absolute performance, optionally skyline-filtered
//	    (Kimura et al. / Microsoft SQL Server advisor)
//	H5: best performance-per-size ratio
//	    (Valentin et al. / IBM DB2 advisor starting solution)
//
// All heuristics greedily pick from an explicit candidate set while the
// memory budget allows; candidates that do not fit are skipped and the scan
// continues with the next-ranked candidate. H1-H3 need no what-if calls;
// H4/H5 require the per-candidate benefit, i.e. a what-if call for every
// applicable (query, candidate) pair — the scaling weakness the paper
// attributes to them.
package heuristics

import (
	"context"
	"fmt"
	"log/slog"
	"sort"
	"time"

	"repro/internal/explain"
	"repro/internal/fault"
	"repro/internal/telemetry"
	"repro/internal/whatif"
	"repro/internal/workload"
)

// Selection-level telemetry (default registry; one update per run).
var (
	mRuns = telemetry.Default().Counter("indexsel_heuristic_runs_total",
		"Completed H1-H5 heuristic selections.")
	mRunDur = telemetry.Default().Histogram("indexsel_heuristic_run_duration_seconds",
		"Wall time per heuristic selection (score + greedy).", nil)
)

// Rule identifies a Definition-1 selection heuristic.
type Rule int

const (
	// H1 ranks by descending frequency-weighted co-occurrence of the
	// candidate's attributes.
	H1 Rule = iota + 1
	// H2 ranks by ascending combined selectivity.
	H2
	// H3 ranks by ascending selectivity/occurrences ratio.
	H3
	// H4 ranks by descending total benefit (absolute performance).
	H4
	// H5 ranks by descending benefit per byte of index size.
	H5
)

func (r Rule) String() string {
	switch r {
	case H1:
		return "H1"
	case H2:
		return "H2"
	case H3:
		return "H3"
	case H4:
		return "H4"
	case H5:
		return "H5"
	default:
		return fmt.Sprintf("Rule(%d)", int(r))
	}
}

// Options configures a heuristic run.
type Options struct {
	// Budget is the memory budget A in bytes (must be positive).
	Budget int64
	// Skyline applies the per-query dominance pre-filter to the candidate
	// set before greedy selection (H4 variant of Kimura et al.): a candidate
	// survives if, for at least one query, no other candidate is at least as
	// good in cost and size and strictly better in one.
	Skyline bool
	// Span, if non-nil, is the parent telemetry span; the run records its
	// phases (heuristics.skyline when enabled, heuristics.rank) under it.
	Span *telemetry.Span
	// Context, if non-nil, interrupts the run on cancellation or context
	// deadline. The expensive phases (skyline filtering and H4/H5 benefit
	// scoring) poll it and truncate to the candidates already evaluated, so an
	// interrupted run still returns a feasible selection over the scored
	// prefix with Result.Partial set — not an error.
	Context context.Context
	// Deadline, if non-zero, is an explicit wall-clock deadline folded with
	// the context's (the earlier wins).
	Deadline time.Time
	// Explain records selection provenance (the ranked pool with every
	// candidate's score and fate) on Result.Provenance and the run's
	// heuristics.rank span. It changes no score, tie-break, or what-if call —
	// the returned selection is identical with it on or off.
	Explain bool
}

// Result is a heuristic's selection with its evaluation.
type Result struct {
	Selection workload.Selection
	// Cost is F(I*) under the optimizer's cost source (single-index mode).
	Cost float64
	// Memory is P(I*).
	Memory int64
	// Considered is the number of candidates ranked after any pre-filter.
	Considered int
	// StopReason says how the run ended; StopConverged when the full ranked
	// scan completed.
	StopReason fault.StopReason
	// Partial is set when the run was interrupted (deadline or cancellation)
	// and the selection covers only the candidates scored before the cut.
	Partial bool
	// Provenance is the ranked-pool record, non-nil only under
	// Options.Explain.
	Provenance *explain.SelectionProvenance
}

// Select runs the given heuristic over the candidate set. A panic inside the
// cost source is recovered and returned as a *fault.WorkerPanicError.
func Select(w *workload.Workload, opt *whatif.Optimizer, cands []workload.Index, rule Rule, opts Options) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fault.AsPanicError("heuristics.Select", r)
		}
	}()
	if opts.Budget <= 0 {
		return nil, fmt.Errorf("heuristics: budget must be positive (got %d)", opts.Budget)
	}
	if rule < H1 || rule > H5 {
		return nil, fmt.Errorf("heuristics: unknown rule %d", int(rule))
	}
	start := time.Now()
	stop := fault.NewStopper(opts.Context, opts.Deadline)
	var prov *explain.SelectionProvenance
	if opts.Explain {
		prov = &explain.SelectionProvenance{Rule: rule.String()}
	}
	pool := cands
	if opts.Skyline {
		ssp := opts.Span.Child("heuristics.skyline")
		pool = skylineFilter(w, opt, pool, stop)
		ssp.SetInt("candidates_before", int64(len(cands)))
		ssp.SetInt("candidates_after", int64(len(pool)))
		ssp.End()
		if prov != nil {
			prov.SkylineBefore = len(cands)
			prov.SkylineAfter = len(pool)
		}
	}
	rsp := opts.Span.Child("heuristics.rank")
	scores := score(w, opt, pool, rule, stop)
	// An interruption mid-scoring leaves a scored prefix; rank only that
	// prefix so every selected candidate carries a fully evaluated score.
	pool = pool[:len(scores)]
	order := make([]int, len(pool))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if scores[ia] != scores[ib] {
			return scores[ia] > scores[ib] // higher score first
		}
		return pool[ia].Key() < pool[ib].Key()
	})

	if prov != nil {
		prov.PoolSize = len(pool)
		prov.Scored = len(scores)
	}

	in := opt.Interner()
	ids := workload.NewIDSelection(in)
	var mem int64
	for rank, i := range order {
		k := pool[i]
		id := in.Intern(k)
		taken, reason := false, ""
		switch {
		case ids.Has(id):
			reason = "duplicate"
		// Benefit-based rules never take net-harmful candidates (negative
		// score means maintenance outweighs the read improvement).
		case (rule == H4 || rule == H5) && scores[i] <= 0:
			reason = "non-positive-score"
		default:
			sz := opt.IndexSizeInterned(k, id)
			if mem+sz > opts.Budget {
				reason = "over-budget"
			} else {
				ids.Add(id)
				mem += sz
				taken = true
			}
		}
		if prov == nil {
			continue
		}
		// Cap the recorded ranking, but a taken candidate is always included
		// — the selected set must be reconstructible from the record alone.
		if len(prov.Ranking) >= explain.MaxRanking && !taken {
			prov.RankingTruncated = true
			continue
		}
		prov.Ranking = append(prov.Ranking, explain.RankedCandidate{
			Rank:      rank + 1,
			Index:     k.Key(),
			Score:     scores[i],
			SizeBytes: opt.IndexSizeInterned(k, id),
			Taken:     taken,
			Reason:    reason,
		})
	}
	sel := ids.Selection()
	reason := stop.Check()
	if reason == fault.StopNone {
		reason = fault.StopConverged
	}
	res = &Result{
		Selection:  sel,
		Cost:       TotalCost(w, opt, sel),
		Memory:     mem,
		Considered: len(pool),
		StopReason: reason,
		Partial:    reason.Interrupted(),
		Provenance: prov,
	}
	rsp.SetStr("rule", rule.String())
	rsp.SetInt("considered", int64(res.Considered))
	rsp.SetInt("selected", int64(len(sel)))
	rsp.SetInt("memory_bytes", mem)
	if prov != nil {
		rsp.SetAny("provenance", *prov)
	}
	rsp.End()
	mRuns.Inc()
	mRunDur.Observe(time.Since(start).Seconds())
	if lg := telemetry.L(); lg.Enabled(context.Background(), slog.LevelDebug) {
		lg.Debug("heuristic selection complete",
			"rule", rule.String(), "considered", res.Considered,
			"selected", len(sel), "cost", res.Cost, "memory_bytes", mem)
	}
	return res, nil
}

// score computes a "higher is better" score per candidate for the rule.
// H4/H5 pay a what-if call per applicable (query, candidate) pair, so the
// stopper is polled between candidates; on interruption the returned slice is
// the fully-scored prefix (shorter than cands). H1-H3 are arithmetic only and
// always score everything.
func score(w *workload.Workload, opt *whatif.Optimizer, cands []workload.Index, rule Rule, stop *fault.Stopper) []float64 {
	scores := make([]float64, len(cands))
	switch rule {
	case H1, H2, H3:
		weights := coOccurrence(w, cands)
		for i, k := range cands {
			s := 1.0
			for _, a := range k.Attrs {
				s *= w.Attr(a).Selectivity()
			}
			switch rule {
			case H1:
				scores[i] = float64(weights[i])
			case H2:
				scores[i] = -s
			default: // H3
				if weights[i] == 0 {
					scores[i] = -s * 1e18 // unused combination: worst
				} else {
					scores[i] = -s / float64(weights[i])
				}
			}
		}
	case H4, H5:
		for i, k := range cands {
			if stop.Check() != fault.StopNone {
				return scores[:i]
			}
			b := Benefit(w, opt, k)
			if rule == H4 {
				scores[i] = b
			} else {
				scores[i] = b / float64(opt.IndexSize(k))
			}
		}
	}
	return scores
}

// coOccurrence returns, per candidate, the frequency-weighted number of
// queries containing all of its attributes.
func coOccurrence(w *workload.Workload, cands []workload.Index) []int64 {
	weights := make([]int64, len(cands))
	for i, k := range cands {
		for _, qid := range queriesWithLead(w, k) {
			q := w.Queries[qid]
			all := true
			for _, a := range k.Attrs {
				if !q.Accesses(a) {
					all = false
					break
				}
			}
			if all {
				weights[i] += q.Freq
			}
		}
	}
	return weights
}

// queriesWithLead returns the queries (reads and writes alike) accessing
// candidate k's leading attribute, via the workload's precomputed inverted
// index instead of a full query scan per candidate. Attributes belong to
// exactly one table, so no table filter is needed.
func queriesWithLead(w *workload.Workload, k workload.Index) []int32 {
	return w.QueriesWithAttr(k.Leading())
}

// Benefit returns the candidate's individually measured total improvement
// sum_j b_j * max(0, f_j(0) - f_j(k)) minus its frequency-weighted write
// maintenance burden — the IIA-blind (net) benefit H4/H5 rank by. It can be
// negative for write-heavy workloads; such candidates are never selected.
func Benefit(w *workload.Workload, opt *whatif.Optimizer, k workload.Index) float64 {
	var b float64
	for _, qid := range queriesWithLead(w, k) {
		q := w.Queries[qid]
		base := opt.BaseCost(q)
		if c := opt.CostWithIndex(q, k); c < base {
			b += float64(q.Freq) * (base - c)
		}
	}
	return b - WriteCost(w, opt, k)
}

// WriteCost returns the frequency-weighted maintenance burden the workload's
// write templates impose on index k.
func WriteCost(w *workload.Workload, opt *whatif.Optimizer, k workload.Index) float64 {
	var c float64
	for _, q := range w.Queries {
		if q.IsWrite() {
			c += float64(q.Freq) * opt.MaintenanceCost(q, k)
		}
	}
	return c
}

// TotalCost evaluates F(I*) in the single-index setting using the
// optimizer's cached per-index costs, including the maintenance cost write
// templates pay for every selected index they touch.
func TotalCost(w *workload.Workload, opt *whatif.Optimizer, sel workload.Selection) float64 {
	var total float64
	for _, q := range w.Queries {
		best := opt.BaseCost(q)
		for _, k := range sel {
			if !workload.Applicable(q, k) {
				continue
			}
			if c := opt.CostWithIndex(q, k); c < best {
				best = c
			}
		}
		if q.IsWrite() {
			for _, k := range sel {
				best += opt.MaintenanceCost(q, k)
			}
		}
		total += float64(q.Freq) * best
	}
	return total
}

// SkylineFilter keeps candidates that are per-query efficient for at least
// one query: candidate k survives if there is a query q (to which k is
// applicable with f_q(k) < f_q(0)) where no other candidate has both cost
// and size at most k's with one strictly better (cf. Kimura et al. [11]).
func SkylineFilter(w *workload.Workload, opt *whatif.Optimizer, cands []workload.Index) []workload.Index {
	return skylineFilter(w, opt, cands, nil)
}

// skylineFilter is SkylineFilter with interruption: the per-candidate cost
// probing polls the stopper and, once stopped, considers only the candidates
// probed so far — a valid (smaller) skyline over the evaluated prefix.
func skylineFilter(w *workload.Workload, opt *whatif.Optimizer, cands []workload.Index, stop *fault.Stopper) []workload.Index {
	type entry struct {
		idx  int
		cost float64
		size int64
	}
	survives := make([]bool, len(cands))
	byQuery := make(map[int][]entry)
	for i, k := range cands {
		if stop.Check() != fault.StopNone {
			break
		}
		for _, qid := range queriesWithLead(w, k) {
			q := w.Queries[qid]
			c := opt.CostWithIndex(q, k)
			if c < opt.BaseCost(q) {
				byQuery[int(qid)] = append(byQuery[int(qid)], entry{i, c, opt.IndexSize(k)})
			}
		}
	}
	for _, entries := range byQuery {
		// Sweep by ascending cost; an entry is on the skyline iff its size
		// is strictly below every cheaper-or-equal-cost entry seen so far.
		sort.Slice(entries, func(a, b int) bool {
			if entries[a].cost != entries[b].cost {
				return entries[a].cost < entries[b].cost
			}
			return entries[a].size < entries[b].size
		})
		minSize := int64(1<<62 - 1)
		for _, e := range entries {
			if e.size < minSize {
				survives[e.idx] = true
				minSize = e.size
			}
		}
	}
	var out []workload.Index
	for i, ok := range survives {
		if ok {
			out = append(out, cands[i])
		}
	}
	return out
}
