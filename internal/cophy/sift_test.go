package cophy

import (
	"math"
	"testing"

	"repro/internal/candidates"
	"repro/internal/workload"
)

// TestAscentBoundBelowOptimum checks the Lagrangian ascent's core contract:
// its bound never exceeds the true optimum, at any lambda the grid visits.
func TestAscentBoundBelowOptimum(t *testing.T) {
	w := gen(t, 1, 8, 12, 20_000, 3)
	m, opt := setup(w)
	cands := singleAttrCandidates(w, 8)
	budget := m.Budget(0.4)
	want := bruteForce(w, m, cands, budget)

	ins := buildInstance(w, opt, cands, nil)
	_, gCost := ins.greedy(budget)
	var baseSum float64
	for j := range ins.base {
		baseSum += ins.freq[j] * ins.base[j]
	}
	asc := newAscent(ins, budget)
	bound, lam := asc.search(gCost, baseSum, nil)
	if bound > want+1e-6*want {
		t.Fatalf("ascent bound %v exceeds optimum %v", bound, want)
	}
	// The closed-form evaluation at the ascent's own duals must agree with
	// the bound the ascent reported.
	if lb := ins.lagrangeBound(asc.v, lam, budget); math.Abs(lb-bound) > 1e-6*math.Abs(bound)+1e-9 {
		t.Fatalf("lagrangeBound(v, lam) = %v, ascent reported %v", lb, bound)
	}
	// Validity is lambda-independent: spot-check off-grid prices too.
	for _, f := range []float64{0, 0.123, 3.7} {
		lb := asc.ascend(lam * f)
		if lb > want+1e-6*want {
			t.Fatalf("bound %v at lambda %v exceeds optimum %v", lb, lam*f, want)
		}
	}
}

// TestSiftedPathSolvesAndCertifies forces the sifting path on an instance
// small enough to brute force: the selection must be feasible, no worse than
// greedy, and the reported gap must be a valid certificate (cost reduced by
// the gap never exceeds the true optimum).
func TestSiftedPathSolvesAndCertifies(t *testing.T) {
	w := gen(t, 1, 8, 12, 20_000, 3)
	m, opt := setup(w)
	cands := singleAttrCandidates(w, 8)
	budget := m.Budget(0.4)
	want := bruteForce(w, m, cands, budget)

	res, err := Solve(w, opt, cands, Options{
		Budget: budget, Gap: 0.05, ForceLP: true, MaxDirectLPSize: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DNF {
		t.Fatal("sifted path reported DNF without a time limit")
	}
	if res.Memory > budget {
		t.Fatalf("memory %d exceeds budget %d", res.Memory, budget)
	}
	if got := m.TotalCost(res.Selection); math.Abs(got-res.Cost) > 1e-6*got {
		t.Fatalf("reported cost %v != model cost %v", res.Cost, got)
	}
	if res.Cost < want-1e-6*want {
		t.Fatalf("cost %v below brute-force optimum %v: invalid selection accounting", res.Cost, want)
	}
	// The certificate bound cost*(1-gap) is a lower bound on the full
	// problem, hence on the optimum.
	if !math.IsInf(res.Stats.Gap, 1) {
		bound := res.Cost - res.Stats.Gap*math.Abs(res.Cost)
		if bound > want+1e-6*want {
			t.Fatalf("certified bound %v exceeds optimum %v (gap %v)", bound, want, res.Stats.Gap)
		}
	}
}

// TestSiftedPathOnMultiAttributeInstance runs the sifting path on a slightly
// larger multi-attribute instance against the direct LP path: the sifted
// selection may be worse (it searches a restriction) but must stay feasible,
// finish, and never beat the direct path's optimum-with-gap guarantee.
func TestSiftedPathOnMultiAttributeInstance(t *testing.T) {
	w := gen(t, 1, 8, 14, 50_000, 7)
	m, opt := setup(w)
	combos, err := candidates.Combos(w, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := w.Occurrences()
	var cands []workload.Index
	for _, c := range combos {
		cands = append(cands, candidates.Representative(c, g, w))
	}
	budget := m.Budget(0.3)
	direct, err := Solve(w, opt, cands, Options{Budget: budget, ForceLP: true})
	if err != nil {
		t.Fatal(err)
	}
	sifted, err := Solve(w, opt, cands, Options{
		Budget: budget, Gap: 0.05, ForceLP: true, MaxDirectLPSize: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sifted.Stats.DNF {
		t.Fatal("sifted path reported DNF without a time limit")
	}
	if sifted.Memory > budget {
		t.Fatalf("memory %d exceeds budget %d", sifted.Memory, budget)
	}
	if sifted.Cost < direct.Cost-1e-6*direct.Cost {
		t.Fatalf("sifted cost %v below the direct optimum %v", sifted.Cost, direct.Cost)
	}
	if !math.IsInf(sifted.Stats.Gap, 1) {
		bound := sifted.Cost - sifted.Stats.Gap*math.Abs(sifted.Cost)
		if bound > direct.Cost+1e-6*direct.Cost {
			t.Fatalf("certified bound %v exceeds direct optimum %v", bound, direct.Cost)
		}
	}
}
