package cophy

import (
	"math"
	"testing"
	"time"

	"repro/internal/candidates"
	"repro/internal/costmodel"
	"repro/internal/whatif"
	"repro/internal/workload"
)

func gen(t *testing.T, tables, attrs, queries int, rows int64, seed int64) *workload.Workload {
	t.Helper()
	cfg := workload.DefaultGenConfig()
	cfg.Tables, cfg.AttrsPerTable, cfg.QueriesPerTable = tables, attrs, queries
	cfg.RowsBase, cfg.Seed = rows, seed
	return workload.MustGenerate(cfg)
}

func setup(w *workload.Workload) (*costmodel.Model, *whatif.Optimizer) {
	m := costmodel.New(w, costmodel.SingleIndex)
	return m, whatif.New(m)
}

// bruteForce finds the optimal selection by enumerating all candidate subsets.
func bruteForce(w *workload.Workload, m *costmodel.Model, cands []workload.Index, budget int64) float64 {
	best := m.TotalCost(workload.NewSelection())
	n := len(cands)
	for mask := 1; mask < 1<<n; mask++ {
		sel := workload.NewSelection()
		var mem int64
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				sel.Add(cands[i])
				mem += m.IndexSize(cands[i])
			}
		}
		if mem > budget {
			continue
		}
		if c := m.TotalCost(sel); c < best {
			best = c
		}
	}
	return best
}

func singleAttrCandidates(w *workload.Workload, n int) []workload.Index {
	g := w.Occurrences()
	type aw struct {
		a int
		g int64
	}
	var all []aw
	for _, a := range w.Attrs() {
		if g[a.ID] > 0 {
			all = append(all, aw{a.ID, g[a.ID]})
		}
	}
	// Highest occurrence first, deterministic.
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if all[j].g > all[i].g || (all[j].g == all[i].g && all[j].a < all[i].a) {
				all[i], all[j] = all[j], all[i]
			}
		}
	}
	if len(all) > n {
		all = all[:n]
	}
	out := make([]workload.Index, len(all))
	for i, e := range all {
		out[i] = workload.MustIndex(w, e.a)
	}
	return out
}

func TestBothPathsMatchBruteForce(t *testing.T) {
	w := gen(t, 1, 8, 12, 20_000, 3)
	m, opt := setup(w)
	cands := singleAttrCandidates(w, 8)
	budget := m.Budget(0.4)
	want := bruteForce(w, m, cands, budget)

	for _, force := range []struct {
		name string
		opts Options
	}{
		{"lp", Options{Budget: budget, ForceLP: true}},
		{"combinatorial", Options{Budget: budget, ForceCombinatorial: true}},
		{"lp+dominance", Options{Budget: budget, ForceLP: true, DominanceReduction: true}},
		{"comb+dominance", Options{Budget: budget, ForceCombinatorial: true, DominanceReduction: true}},
	} {
		res, err := Solve(w, opt, cands, force.opts)
		if err != nil {
			t.Fatalf("%s: %v", force.name, err)
		}
		if math.Abs(res.Cost-want) > 1e-6*want {
			t.Errorf("%s: cost %v, brute force %v", force.name, res.Cost, want)
		}
		if res.Memory > budget {
			t.Errorf("%s: memory %d exceeds budget %d", force.name, res.Memory, budget)
		}
		if got := m.TotalCost(res.Selection); math.Abs(got-res.Cost) > 1e-6*got {
			t.Errorf("%s: reported cost %v != model %v", force.name, res.Cost, got)
		}
	}
}

func TestMultiAttributeCandidates(t *testing.T) {
	w := gen(t, 1, 6, 8, 50_000, 5)
	m, opt := setup(w)
	combos, err := candidates.Combos(w, 2)
	if err != nil {
		t.Fatal(err)
	}
	cands := candidates.Permutations(combos)
	if len(cands) > 16 {
		cands = cands[:16]
	}
	budget := m.Budget(0.5)
	want := bruteForce(w, m, cands, budget)
	for _, force := range []Options{
		{Budget: budget, ForceLP: true},
		{Budget: budget, ForceCombinatorial: true},
	} {
		res, err := Solve(w, opt, cands, force)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Cost-want) > 1e-6*want {
			t.Errorf("opts %+v: cost %v, brute force %v", force, res.Cost, want)
		}
	}
}

func TestPathsAgreeOnLargerInstance(t *testing.T) {
	w := gen(t, 1, 8, 14, 50_000, 7)
	m, opt := setup(w)
	combos, err := candidates.Combos(w, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := w.Occurrences()
	var cands []workload.Index
	for _, c := range combos {
		cands = append(cands, candidates.Representative(c, g, w))
	}
	budget := m.Budget(0.3)
	lpRes, err := Solve(w, opt, cands, Options{Budget: budget, ForceLP: true})
	if err != nil {
		t.Fatal(err)
	}
	combRes, err := Solve(w, opt, cands, Options{Budget: budget, ForceCombinatorial: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lpRes.Cost-combRes.Cost) > 1e-6*lpRes.Cost {
		t.Errorf("paths disagree: LP %v vs combinatorial %v", lpRes.Cost, combRes.Cost)
	}
}

func TestStatsPaperCounting(t *testing.T) {
	// Hand-checkable: 1 table, queries {0,1}, {1,2}; candidates {0}, {1}, {2,1}.
	tables := []workload.Table{{ID: 0, Name: "T", Rows: 1000, Attrs: []int{0, 1, 2}}}
	attrs := []workload.Attribute{
		{ID: 0, Table: 0, Name: "a", Distinct: 10, ValueSize: 4},
		{ID: 1, Table: 0, Name: "b", Distinct: 20, ValueSize: 4},
		{ID: 2, Table: 0, Name: "c", Distinct: 30, ValueSize: 4},
	}
	queries := []workload.Query{
		{ID: 0, Table: 0, Attrs: []int{0, 1}, Freq: 5},
		{ID: 1, Table: 0, Attrs: []int{1, 2}, Freq: 3},
	}
	w, err := workload.New(tables, attrs, queries)
	if err != nil {
		t.Fatal(err)
	}
	_, opt := setup(w)
	cands := []workload.Index{
		workload.MustIndex(w, 0),    // applicable to q0 only
		workload.MustIndex(w, 1),    // applicable to q0, q1
		workload.MustIndex(w, 2, 1), // leading attr 2: applicable to q1 only
	}
	res, err := Solve(w, opt, cands, Options{Budget: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	// sum_j |I_j| = |{k0,k1}| + |{k1,k2}| = 4.
	// Vars = |I| + sum_j |I_j| + Q (z_j0) = 3 + 4 + 2 = 9.
	// Constraints = Q + sum_j |I_j| + 1 = 2 + 4 + 1 = 7.
	if res.Stats.Vars != 9 {
		t.Errorf("Vars = %d, want 9", res.Stats.Vars)
	}
	if res.Stats.Constraints != 7 {
		t.Errorf("Constraints = %d, want 7", res.Stats.Constraints)
	}
	// What-if calls: one per (query, applicable candidate) pair plus the
	// 2 base costs = 4 + 2 = 6.
	if res.Stats.WhatIfCalls != 6 {
		t.Errorf("WhatIfCalls = %d, want 6", res.Stats.WhatIfCalls)
	}
}

func TestTimeLimitDNF(t *testing.T) {
	w := gen(t, 2, 15, 60, 100_000, 9)
	m, opt := setup(w)
	combos, err := candidates.Combos(w, 3)
	if err != nil {
		t.Fatal(err)
	}
	cands := candidates.Permutations(combos)
	res, err := Solve(w, opt, cands, Options{
		Budget:             m.Budget(0.3),
		TimeLimit:          time.Nanosecond,
		ForceCombinatorial: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.DNF {
		t.Error("expected DNF under nanosecond time limit")
	}
	// Even a DNF returns a feasible incumbent.
	if res.Memory > m.Budget(0.3) {
		t.Errorf("DNF incumbent exceeds budget")
	}
}

func TestGapSpeedsUpAndBoundsQuality(t *testing.T) {
	w := gen(t, 1, 8, 16, 100_000, 11)
	m, opt := setup(w)
	combos, err := candidates.Combos(w, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := w.Occurrences()
	var cands []workload.Index
	for _, c := range combos {
		cands = append(cands, candidates.Representative(c, g, w))
	}
	budget := m.Budget(0.3)
	exact, err := Solve(w, opt, cands, Options{Budget: budget, ForceCombinatorial: true})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Solve(w, opt, cands, Options{Budget: budget, Gap: 0.05, ForceCombinatorial: true})
	if err != nil {
		t.Fatal(err)
	}
	if loose.Stats.Nodes > exact.Stats.Nodes {
		t.Errorf("gap run explored more nodes (%d) than exact (%d)", loose.Stats.Nodes, exact.Stats.Nodes)
	}
	if loose.Cost > exact.Cost*1.05+1e-9 {
		t.Errorf("gap run cost %v violates 5%% bound vs exact %v", loose.Cost, exact.Cost)
	}
}

func TestLargerCandidateSetNeverWorse(t *testing.T) {
	// CoPhy with a superset of candidates can only improve (Figure 3's
	// premise) when solved exactly.
	w := gen(t, 1, 10, 20, 50_000, 13)
	m, opt := setup(w)
	small := singleAttrCandidates(w, 4)
	large := singleAttrCandidates(w, 10)
	budget := m.Budget(0.4)
	rs, err := Solve(w, opt, small, Options{Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	rl, err := Solve(w, opt, large, Options{Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	if rl.Cost > rs.Cost+1e-9 {
		t.Errorf("larger candidate set worsened cost: %v > %v", rl.Cost, rs.Cost)
	}
}

func TestValidationErrors(t *testing.T) {
	w := gen(t, 1, 5, 5, 1000, 1)
	_, opt := setup(w)
	if _, err := Solve(w, opt, nil, Options{}); err == nil {
		t.Error("accepted zero budget")
	}
	if _, err := Solve(w, opt, nil, Options{Budget: 1, ForceLP: true, ForceCombinatorial: true}); err == nil {
		t.Error("accepted contradictory force flags")
	}
}

func TestEmptyCandidates(t *testing.T) {
	w := gen(t, 1, 5, 5, 1000, 1)
	m, opt := setup(w)
	res, err := Solve(w, opt, nil, Options{Budget: m.Budget(0.5)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selection) != 0 {
		t.Error("selected indexes from empty candidate set")
	}
	if want := m.TotalCost(workload.NewSelection()); math.Abs(res.Cost-want) > 1e-9*want {
		t.Errorf("cost %v, want base %v", res.Cost, want)
	}
}

func TestDominanceReductionPreservesOptimum(t *testing.T) {
	w := gen(t, 1, 8, 14, 50_000, 17)
	m, opt := setup(w)
	combos, err := candidates.Combos(w, 2)
	if err != nil {
		t.Fatal(err)
	}
	cands := candidates.Permutations(combos)
	budget := m.Budget(0.3)
	plain, err := Solve(w, opt, cands, Options{Budget: budget, ForceCombinatorial: true})
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := Solve(w, opt, cands, Options{Budget: budget, ForceCombinatorial: true, DominanceReduction: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plain.Cost-reduced.Cost) > 1e-6*plain.Cost {
		t.Errorf("dominance reduction changed optimum: %v vs %v", plain.Cost, reduced.Cost)
	}
}

func TestWriteWorkloadMatchesBruteForce(t *testing.T) {
	cfg := workload.DefaultGenConfig()
	cfg.Tables, cfg.AttrsPerTable, cfg.QueriesPerTable = 1, 8, 14
	cfg.RowsBase, cfg.Seed = 50_000, 23
	cfg.WriteShare = 0.3
	w := workload.MustGenerate(cfg)
	m, opt := setup(w)
	cands := singleAttrCandidates(w, 8)
	budget := m.Budget(0.5)
	want := bruteForce(w, m, cands, budget) // TotalCost includes maintenance

	for _, force := range []Options{
		{Budget: budget, ForceLP: true},
		{Budget: budget, ForceCombinatorial: true},
	} {
		res, err := Solve(w, opt, cands, force)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Cost-want) > 1e-6*want {
			t.Errorf("opts %+v: cost %v, brute force %v", force, res.Cost, want)
		}
		if got := m.TotalCost(res.Selection); math.Abs(got-res.Cost) > 1e-6*got {
			t.Errorf("reported cost %v != model %v", res.Cost, got)
		}
	}
}
