package cophy

import (
	"container/heap"
	"math"
	"sort"

	"repro/internal/fault"
)

// solveCombinatorial runs a depth-first branch and bound directly over the
// x_k variables, exploiting that for fixed x the optimal z assignment is
// "each query takes its cheapest selected applicable index". It is used when
// the explicit LP would be impractically large.
//
// Bound: the maximum of two valid lower bounds. (1) Knapsack: cost(S) minus
// the fractional-knapsack optimum over the remaining candidates' root
// benefits (each candidate's total improvement over the BASE costs, an upper
// bound on its marginal gain in any context — a query's improvement under a
// set of indexes never exceeds the sum of the individual improvements).
// (2) Memory-relaxed: sum_j b_j * min(cur_j, best_j), where best_j is query
// j's cheapest cost under ANY candidate — no budget can beat it.
func (ins *instance) solveCombinatorial(budget int64, gap float64, stop *fault.Stopper) (chosen []int, cost float64, nodes int, finalGap float64, dnf bool) {
	// Usable candidates in descending root-density order.
	type ordered struct {
		ci      int
		ben     float64
		size    int64
		density float64
	}
	var order []ordered
	for ci := range ins.cands {
		info := &ins.cands[ci]
		if len(info.queries) == 0 || info.size > budget {
			continue
		}
		var ben float64
		for _, a := range info.queries {
			ben += ins.freq[a.other] * (ins.base[a.other] - a.cost)
		}
		ben -= info.writeCost // net of maintenance: an upper bound on any marginal net gain
		if ben <= 0 {
			continue
		}
		order = append(order, ordered{ci, ben, info.size, ben / float64(info.size)})
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].density != order[j].density {
			return order[i].density > order[j].density
		}
		return ins.cands[order[i].ci].index.Key() < ins.cands[order[j].ci].index.Key()
	})

	baseTotal := ins.baseTotal()
	if len(order) == 0 {
		return nil, baseTotal, 0, 0, false
	}

	greedy, gcost := ins.greedy(budget)
	bestChosen := append([]int(nil), greedy...)
	bestCost := gcost
	cur := make([]float64, len(ins.base))

	// bestPossible[j]: query j's cheapest cost under any usable candidate.
	bestPossible := append([]float64(nil), ins.base...)
	for _, o := range order {
		for _, a := range ins.cands[o.ci].queries {
			if a.cost < bestPossible[a.other] {
				bestPossible[a.other] = a.cost
			}
		}
	}

	// DFS state: per-query current cost with an undo log per depth.
	// relaxedLB = sum_j b_j * min(cur_j, bestPossible_j) is maintained
	// incrementally: it only changes when cur_j drops below bestPossible_j,
	// which cannot happen (bestPossible is the floor), so it is constant —
	// the memory-relaxed bound of the WHOLE search. Per-node tightening
	// comes from the knapsack term.
	var relaxedLB float64
	for j := range ins.base {
		relaxedLB += ins.freq[j] * bestPossible[j]
	}

	copy(cur, ins.base)
	curCost := baseTotal
	var curMem int64
	var picked []int
	gapPruned := false
	deadlineHit := false

	pruneThreshold := func() float64 {
		return bestCost - gap*math.Abs(bestCost) - 1e-9
	}

	// lowerBound: cost reachable from position p with remaining memory —
	// the larger of the knapsack bound and the memory-relaxed bound.
	lowerBound := func(p int, remaining int64) float64 {
		gain := 0.0
		m := remaining
		for i := p; i < len(order) && m > 0; i++ {
			o := order[i]
			if o.size <= m {
				gain += o.ben
				m -= o.size
			} else {
				gain += o.ben * float64(m) / float64(o.size)
				break
			}
		}
		lb := curCost - gain
		if relaxedLB > lb {
			lb = relaxedLB
		}
		return lb
	}

	rootBound := lowerBound(0, budget)
	// A context that is already dead (or dies during a truncated build) must
	// still report DNF even if the first 255-node stretch would finish fast.
	if stop.Check() != fault.StopNone {
		deadlineHit = true
	}

	var rec func(p int)
	rec = func(p int) {
		nodes++
		if deadlineHit || (nodes&255 == 0 && stop.Check() != fault.StopNone) {
			deadlineHit = true
			return
		}
		if curCost < bestCost-1e-9 {
			bestCost = curCost
			bestChosen = append(bestChosen[:0], picked...)
		}
		if p == len(order) {
			return
		}
		lb := lowerBound(p, budget-curMem)
		if lb >= pruneThreshold() {
			if gap > 0 && lb < bestCost {
				gapPruned = true
			}
			return
		}
		o := order[p]
		// Include branch first (diving toward good incumbents).
		if curMem+o.size <= budget {
			var undo []assign
			var gain float64
			for _, a := range ins.cands[o.ci].queries {
				if a.cost < cur[a.other] {
					undo = append(undo, assign{a.other, cur[a.other]})
					gain += ins.freq[a.other] * (cur[a.other] - a.cost)
					cur[a.other] = a.cost
				}
			}
			gain -= ins.cands[o.ci].writeCost
			if gain > 0 {
				picked = append(picked, o.ci)
				curCost -= gain
				curMem += o.size
				rec(p + 1)
				curMem -= o.size
				curCost += gain
				picked = picked[:len(picked)-1]
			}
			for _, u := range undo {
				cur[u.other] = u.cost
			}
		}
		if deadlineHit {
			return
		}
		rec(p + 1)
	}
	rec(0)

	finalGap = 0
	if gapPruned {
		finalGap = gap
	}
	if deadlineHit {
		dnf = true
		// Without open-node bookkeeping, the proven lower bound after an
		// aborted search is the root relaxation; report the gap against it.
		finalGap = math.Inf(1)
		if bestCost > 0 {
			finalGap = (bestCost - rootBound) / bestCost
		}
	}
	return bestChosen, bestCost, nodes, finalGap, dnf
}

// baseTotal returns F(∅).
func (ins *instance) baseTotal() float64 {
	var total float64
	for j := range ins.base {
		total += ins.freq[j] * ins.base[j]
	}
	return total
}

// greedy builds an incumbent with the lazy-greedy (CELF) rule: repeatedly
// select the candidate with the best MARGINAL gain per byte given everything
// already selected. In the single-index setting marginal gains are
// submodular — a candidate's gain only shrinks as the selection grows — so
// lazily re-evaluated priority-queue entries give the exact greedy solution
// without rescoring every candidate each round. It is both the combinatorial
// search's starting incumbent and the fallback when the explicit-LP path
// hits its deadline without one.
func (ins *instance) greedy(budget int64) ([]int, float64) {
	return ins.greedyMasked(budget, nil)
}

// greedyMasked is greedy restricted to the candidates with allowed[ci] true
// (nil allows all). The sifting path runs it over the root LP's fractional
// support, where the density rule is no longer distracted by high-density
// candidates the relaxation proves unhelpful.
func (ins *instance) greedyMasked(budget int64, allowed []bool) ([]int, float64) {
	cur := append([]float64(nil), ins.base...)
	marginal := func(ci int) float64 {
		var gain float64
		for _, a := range ins.cands[ci].queries {
			if a.cost < cur[a.other] {
				gain += ins.freq[a.other] * (cur[a.other] - a.cost)
			}
		}
		return gain - ins.cands[ci].writeCost
	}

	h := &candHeap{ins: ins}
	for ci := range ins.cands {
		info := &ins.cands[ci]
		if allowed != nil && !allowed[ci] {
			continue
		}
		if len(info.queries) == 0 || info.size > budget {
			continue
		}
		if g := marginal(ci); g > 0 {
			h.entries = append(h.entries, heapEntry{ci, g / float64(info.size), true})
		}
	}
	heap.Init(h)

	var chosen []int
	var mem int64
	cost := ins.baseTotal()
	for h.Len() > 0 {
		e := heap.Pop(h).(heapEntry)
		info := &ins.cands[e.ci]
		if mem+info.size > budget {
			continue // memory only grows; this candidate never fits again
		}
		if !e.fresh {
			g := marginal(e.ci)
			if g <= 0 {
				continue
			}
			d := g / float64(info.size)
			if h.Len() > 0 && d < h.entries[0].density {
				heap.Push(h, heapEntry{e.ci, d, true})
				continue
			}
			e.density = d
		}
		gain := marginal(e.ci)
		if gain <= 0 {
			continue
		}
		chosen = append(chosen, e.ci)
		mem += info.size
		cost -= gain
		for _, a := range info.queries {
			if a.cost < cur[a.other] {
				cur[a.other] = a.cost
			}
		}
		// All remaining entries are now potentially stale.
		for i := range h.entries {
			h.entries[i].fresh = false
		}
	}
	return chosen, cost
}

type heapEntry struct {
	ci      int
	density float64
	fresh   bool
}

// candHeap is a max-heap on density with a deterministic tie-break.
type candHeap struct {
	ins     *instance
	entries []heapEntry
}

func (h *candHeap) Len() int { return len(h.entries) }
func (h *candHeap) Less(i, j int) bool {
	a, b := h.entries[i], h.entries[j]
	if a.density != b.density {
		return a.density > b.density
	}
	return h.ins.cands[a.ci].index.Key() < h.ins.cands[b.ci].index.Key()
}
func (h *candHeap) Swap(i, j int) { h.entries[i], h.entries[j] = h.entries[j], h.entries[i] }
func (h *candHeap) Push(x interface{}) {
	h.entries = append(h.entries, x.(heapEntry))
}
func (h *candHeap) Pop() interface{} {
	old := h.entries
	n := len(old)
	x := old[n-1]
	h.entries = old[:n-1]
	return x
}
