// Package cophy re-implements CoPhy's linear-programming index-selection
// approach (Dash et al., PVLDB 2011) as formalized in Section II-B of the
// paper, eqs. (5)-(8): given a fixed candidate set I, pick x_k ∈ {0,1} and
// per-query assignments z_jk minimizing total workload cost under a memory
// budget, with at most one index per query.
//
// Two solve paths are provided:
//
//   - an explicit LP/MIP over package lp (the faithful formulation; also the
//     source of the paper's Figure-6 variable/constraint accounting), used
//     when the model is small enough to materialize;
//   - a combinatorial branch-and-bound over x alone that exploits the
//     structure "for fixed x, each query takes its cheapest selected
//     applicable index", used for larger candidate sets.
//
// Both honor a mip-gap and a deadline and report DNF ("did not finish") when
// the deadline strikes first — reproducing the scaling behaviour of Table I.
package cophy

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"time"

	"repro/internal/explain"
	"repro/internal/fault"
	"repro/internal/lp"
	"repro/internal/telemetry"
	"repro/internal/whatif"
	"repro/internal/workload"
)

// Solve-level telemetry (default registry; one update per solve phase).
var (
	mSolves = telemetry.Default().Counter("indexsel_cophy_solves_total",
		"Completed CoPhy solves.")
	mSolveDur = telemetry.Default().Histogram("indexsel_cophy_solve_duration_seconds",
		"Wall time of the CoPhy solve phase (excluding model build).", nil)
	mNodes = telemetry.Default().Counter("indexsel_cophy_nodes_total",
		"Branch-and-bound nodes explored across solves.")
	mDNF = telemetry.Default().Counter("indexsel_cophy_dnf_total",
		"CoPhy solves aborted by the time limit (DNF).")
)

// Options configures a CoPhy solve.
type Options struct {
	// Budget is the memory budget A in bytes (must be positive).
	Budget int64
	// Gap is the relative optimality gap (the paper uses mipgap=0.05).
	Gap float64
	// TimeLimit aborts the solve; zero means none. On abort the best
	// incumbent found is returned with Stats.DNF set.
	TimeLimit time.Duration
	// Context, if non-nil, cancels the solve with the same graceful
	// degradation as TimeLimit: the model build truncates its candidate loop,
	// the explicit-LP path forwards cancellation into the branch-and-bound
	// reducer, the combinatorial search polls it between nodes, and the best
	// incumbent found (greedy at worst) is returned with Stats.DNF set. The
	// context's own deadline (if earlier than TimeLimit's) wins.
	Context context.Context
	// MaxLPSize bounds the number of LP variables for the explicit-LP path;
	// larger models switch to the combinatorial branch and bound.
	// Zero means 5000.
	MaxLPSize int
	// ForceLP forces the explicit LP path regardless of size; ForceCombinatorial
	// forces the combinatorial path. Setting both is an error.
	ForceLP            bool
	ForceCombinatorial bool
	// MaxDirectLPSize bounds the number of LP variables the explicit-LP path
	// materializes in full. Larger models are solved by sifting: a
	// Lagrangian dual ascent picks a candidate restriction, the restricted
	// MIP starts from the greedy incumbent, and the ascent (or root-dual)
	// bound certifies the result over the full candidate set. Zero means
	// 40000.
	MaxDirectLPSize int
	// DominanceReduction removes globally dominated candidates before
	// solving when the candidate set is at most MaxDominanceSize. It never
	// changes the optimum, only the search size.
	DominanceReduction bool
	// MaxDominanceSize bounds the candidate count for the (quadratic)
	// dominance filter; zero means 4000.
	MaxDominanceSize int
	// Parallelism is the number of worker goroutines the explicit-LP
	// branch and bound uses for node LP solves; 0 means GOMAXPROCS.
	// Results are bit-identical at any setting.
	Parallelism int
	// Span, if non-nil, is the parent telemetry span; the solve records one
	// child span per phase (cophy.build, cophy.reduce, cophy.solve) under it.
	Span *telemetry.Span
	// Explain records the solve's optimality certificate (incumbent, proven
	// bound, gap, node count, root LP objective and budget shadow price) on
	// Result.Provenance and the cophy.solve span. It changes nothing about
	// the search — the certificate is read off state the solve already
	// computes.
	Explain bool
}

// Stats reports the solve's size and effort.
type Stats struct {
	// Vars and Constraints are the LP dimensions per the paper's counting:
	// |I| + sum_j |I_j ∪ 0| variables and Q + sum_j |I_j| + 1 constraints,
	// with I_j the candidates whose leading attribute occurs in q_j.
	Vars, Constraints int
	// WhatIfCalls is the number of cost evaluations performed to populate
	// the model's f_j(k) coefficients (≈ Q * q-bar * |I| / N, eq. (9)).
	WhatIfCalls int64
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int
	// Elapsed is the wall-clock solve time (excluding what-if calls).
	Elapsed time.Duration
	// Gap is the final relative optimality gap.
	Gap float64
	// DNF reports that the time limit struck before the gap was proven.
	DNF bool
	// UsedLP reports which path ran (true: explicit LP, false: combinatorial).
	UsedLP bool
}

// Result is a CoPhy selection.
type Result struct {
	Selection workload.Selection
	// Cost is F(I*) in the single-index setting.
	Cost float64
	// Memory is P(I*).
	Memory int64
	Stats  Stats
	// Provenance is the solve certificate, non-nil only under
	// Options.Explain.
	Provenance *explain.SolveProvenance
}

// Solve runs CoPhy over the candidate set.
//
// Solve never lets a panic escape: a panic during the model build, a node LP
// solve, or the combinatorial search is recovered and returned as a
// *fault.WorkerPanicError.
func Solve(w *workload.Workload, opt *whatif.Optimizer, cands []workload.Index, opts Options) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fault.AsPanicError("cophy.Solve", r)
		}
	}()
	if opts.Budget <= 0 {
		return nil, fmt.Errorf("cophy: budget must be positive (got %d)", opts.Budget)
	}
	if opts.ForceLP && opts.ForceCombinatorial {
		return nil, fmt.Errorf("cophy: ForceLP and ForceCombinatorial are mutually exclusive")
	}
	// The build phase honors only the context (TimeLimit is a solve-phase
	// budget): cancellation truncates the candidate loop, and the solve then
	// degrades over the candidates built so far.
	buildStop := fault.NewStopper(opts.Context, time.Time{})
	bsp := opts.Span.Child("cophy.build")
	ins := buildInstance(w, opt, cands, buildStop)
	stats := Stats{
		Vars:        ins.paperVars,
		Constraints: ins.paperConstraints,
		WhatIfCalls: ins.whatIfCalls,
	}
	bsp.SetInt("candidates", int64(len(cands)))
	bsp.SetInt("vars", int64(stats.Vars))
	bsp.SetInt("constraints", int64(stats.Constraints))
	bsp.SetInt("whatif_calls", stats.WhatIfCalls)
	bsp.End()
	if opts.Explain {
		ins.prov = &explain.SolveProvenance{}
	}

	if opts.DominanceReduction {
		limit := opts.MaxDominanceSize
		if limit == 0 {
			limit = 4000
		}
		if len(ins.cands) <= limit {
			rsp := opts.Span.Child("cophy.reduce")
			before := len(ins.cands)
			ins.reduceDominated()
			rsp.SetInt("candidates_before", int64(before))
			rsp.SetInt("candidates_after", int64(len(ins.cands)))
			rsp.End()
		}
	}

	maxLP := opts.MaxLPSize
	if maxLP == 0 {
		maxLP = 5000
	}
	useLP := opts.ForceLP || (!opts.ForceCombinatorial && ins.lpVars() <= maxLP)

	ssp := opts.Span.Child("cophy.solve")
	start := time.Now()
	var deadline time.Time
	if opts.TimeLimit > 0 {
		deadline = start.Add(opts.TimeLimit)
	}
	// stop merges TimeLimit and the context (including the context's own
	// deadline) for the solve phase.
	stop := fault.NewStopper(opts.Context, deadline)
	var (
		chosen []int
		cost   float64
		nodes  int
		gap    float64
		dnf    bool
		serr   error
	)
	if useLP {
		directCap := opts.MaxDirectLPSize
		if directCap == 0 {
			directCap = 40_000
		}
		chosen, cost, nodes, gap, dnf, serr = ins.solveLP(opts.Budget, opts.Gap, stop, opts.Parallelism, directCap, ssp)
	} else {
		chosen, cost, nodes, gap, dnf = ins.solveCombinatorial(opts.Budget, opts.Gap, stop)
	}
	if serr != nil {
		ssp.Discard()
		return nil, serr
	}
	if ins.truncated {
		// A cancelled build means the solve ran over a candidate subset; the
		// result is feasible but not a certificate over the full set.
		dnf = true
	}
	stats.Elapsed = time.Since(start)
	stats.Nodes = nodes
	stats.Gap = gap
	stats.DNF = dnf
	stats.UsedLP = useLP

	if ins.prov != nil {
		p := ins.prov
		p.UsedLP = useLP
		p.Candidates = len(ins.cands)
		p.Vars = stats.Vars
		p.Constraints = stats.Constraints
		p.Nodes = nodes
		p.Incumbent = cost
		p.DNF = dnf
		// Gap can be +Inf when no bound was proven (DNF before the root
		// solved); the record stays JSON-marshalable by carrying the
		// certificate only when it exists.
		if !math.IsInf(gap, 1) && !math.IsNaN(gap) {
			p.Gap = gap
			p.Bound = cost - gap*math.Abs(cost)
		}
		ssp.SetAny("provenance", *p)
	}
	ssp.SetBool("used_lp", useLP)
	ssp.SetInt("nodes", int64(nodes))
	ssp.SetFloat("gap", gap)
	ssp.SetBool("dnf", dnf)
	ssp.SetInt("selected", int64(len(chosen)))
	ssp.End()
	mSolves.Inc()
	mSolveDur.Observe(stats.Elapsed.Seconds())
	mNodes.Add(int64(nodes))
	if dnf {
		mDNF.Inc()
	}
	if lg := telemetry.L(); lg.Enabled(context.Background(), slog.LevelDebug) {
		lg.Debug("cophy solve complete",
			"candidates", len(cands), "used_lp", useLP, "nodes", nodes,
			"gap", gap, "dnf", dnf, "elapsed", stats.Elapsed)
	}

	sel := workload.NewSelection()
	var mem int64
	for _, ci := range chosen {
		sel.Add(ins.cands[ci].index)
		mem += ins.cands[ci].size
	}
	return &Result{Selection: sel, Cost: cost, Memory: mem, Stats: stats, Provenance: ins.prov}, nil
}

// ModelSize reports the LP dimensions and what-if cost of CoPhy's
// formulation for the candidate set without solving it — the accounting
// behind the paper's Figure 6.
func ModelSize(w *workload.Workload, opt *whatif.Optimizer, cands []workload.Index) Stats {
	ins := buildInstance(w, opt, cands, nil)
	return Stats{
		Vars:        ins.paperVars,
		Constraints: ins.paperConstraints,
		WhatIfCalls: ins.whatIfCalls,
	}
}

// instance is the preprocessed problem: per-query applicable candidates with
// their cost coefficients.
type instance struct {
	w     *workload.Workload
	cands []candInfo
	// perQuery[j] lists (candidate index, f_j(k)) for candidates applicable
	// to query j with f_j(k) < f_j(0); base[j] is f_j(0).
	perQuery [][]assign
	base     []float64
	freq     []float64

	paperVars        int
	paperConstraints int
	whatIfCalls      int64

	// truncated reports that the build was cut short by cancellation: the
	// instance covers a prefix of the candidate set, so any solve over it is
	// feasible but DNF with respect to the full set.
	truncated bool

	// prov, when non-nil, collects the solve certificate; the LP paths add
	// the root-relaxation fields (objective, budget dual) as they compute
	// them.
	prov *explain.SolveProvenance
}

type candInfo struct {
	index workload.Index
	size  int64
	// queries lists (query ID, cost) pairs where this candidate improves on
	// the base cost (read paths only).
	queries []assign
	// writeCost is the frequency-weighted maintenance burden the workload's
	// write templates impose once this candidate is selected. It enters the
	// objective as a coefficient on x_k.
	writeCost float64
}

type assign struct {
	other int // candidate index (in perQuery) or query ID (in candInfo)
	cost  float64
}

// buildInstance preprocesses the candidate set into the solve instance,
// performing one what-if call per applicable (query, candidate) pair — the
// expensive phase under measured sources. A non-nil stop truncates the
// candidate loop on cancellation: candidates built so far form a consistent
// (smaller) instance and ins.truncated is set.
func buildInstance(w *workload.Workload, opt *whatif.Optimizer, cands []workload.Index, stop *fault.Stopper) *instance {
	ins := &instance{
		w:        w,
		perQuery: make([][]assign, w.NumQueries()),
		base:     make([]float64, w.NumQueries()),
		freq:     make([]float64, w.NumQueries()),
	}
	before := opt.Stats()
	for _, q := range w.Queries {
		ins.base[q.ID] = opt.BaseCost(q)
		ins.freq[q.ID] = float64(q.Freq)
	}
	ins.cands = make([]candInfo, len(cands))
	paperIj := 0
	for ci, k := range cands {
		if stop.Check() != fault.StopNone {
			ins.cands = ins.cands[:ci]
			ins.truncated = true
			break
		}
		info := candInfo{index: k, size: opt.IndexSize(k)}
		for _, q := range w.Queries {
			if q.IsWrite() {
				info.writeCost += float64(q.Freq) * opt.MaintenanceCost(q, k)
			}
			if !workload.Applicable(q, k) {
				continue
			}
			paperIj++ // member of I_j by the leading-attribute rule
			c := opt.CostWithIndex(q, k)
			if c < ins.base[q.ID] {
				info.queries = append(info.queries, assign{q.ID, c})
				ins.perQuery[q.ID] = append(ins.perQuery[q.ID], assign{ci, c})
			}
		}
		ins.cands[ci] = info
	}
	after := opt.Stats()
	ins.whatIfCalls = after.Calls - before.Calls
	// Paper counting: |I| + sum_j(|I_j|+1) variables; Q + sum_j |I_j| + 1
	// constraints (eqs. (6)-(8) with the z_j0 option). A truncated build
	// counts the candidates actually materialized.
	ins.paperVars = len(ins.cands) + paperIj + w.NumQueries()
	ins.paperConstraints = w.NumQueries() + paperIj + 1
	return ins
}

// lpVars returns the size of the benefit-filtered explicit LP.
func (ins *instance) lpVars() int {
	n := len(ins.cands) + len(ins.perQuery)
	for _, pq := range ins.perQuery {
		n += len(pq)
	}
	return n
}

// reduceDominated drops candidates k for which another candidate k2 is no
// larger and at least as good for every query k improves (and strictly
// better in size or some cost, with a deterministic tie-break). Dominated
// candidates can be exchanged for their dominator in any feasible solution
// without losing quality, so removal preserves the optimum.
func (ins *instance) reduceDominated() {
	n := len(ins.cands)
	// Per-query cost lookup for dominance checks.
	costOf := make([]map[int]float64, n)
	for ci := range ins.cands {
		m := make(map[int]float64, len(ins.cands[ci].queries))
		for _, a := range ins.cands[ci].queries {
			m[a.other] = a.cost
		}
		costOf[ci] = m
	}
	dominated := make([]bool, n)
	for a := 0; a < n; a++ {
		if dominated[a] || len(ins.cands[a].queries) == 0 {
			if len(ins.cands[a].queries) == 0 {
				dominated[a] = true // helps no query at all
			}
			continue
		}
		for b := 0; b < n; b++ {
			if a == b || dominated[b] || ins.cands[b].size > ins.cands[a].size ||
				ins.cands[b].writeCost > ins.cands[a].writeCost+1e-12 {
				continue
			}
			if len(ins.cands[b].queries) < len(ins.cands[a].queries) {
				continue
			}
			dominatesAll := true
			strict := ins.cands[b].size < ins.cands[a].size
			for _, qa := range ins.cands[a].queries {
				cb, ok := costOf[b][qa.other]
				if !ok || cb > qa.cost {
					dominatesAll = false
					break
				}
				if cb < qa.cost {
					strict = true
				}
			}
			if dominatesAll && (strict || b < a) {
				dominated[a] = true
				break
			}
		}
	}
	keep := make([]candInfo, 0, n)
	remap := make([]int, n)
	for ci := range ins.cands {
		if dominated[ci] {
			remap[ci] = -1
			continue
		}
		remap[ci] = len(keep)
		keep = append(keep, ins.cands[ci])
	}
	ins.cands = keep
	for j := range ins.perQuery {
		filtered := ins.perQuery[j][:0]
		for _, a := range ins.perQuery[j] {
			if remap[a.other] >= 0 {
				a.other = remap[a.other]
				filtered = append(filtered, a)
			}
		}
		ins.perQuery[j] = filtered
	}
}

// solveLP materializes eqs. (5)-(8) and solves with the lp package's
// warm-started branch and bound. The greedy heuristic runs first: its
// objective seeds the MIP as a cutoff (pruning nodes before any incumbent
// exists) and serves as the fallback incumbent when the deadline strikes
// early. The reported gap is proven against the MIP's lower bound for
// whichever solution — MIP incumbent or greedy — is returned.
//
// The model is built in substituted form: the base-assignment variable is
// eliminated via z_j0 = 1 − Σ_k z_jk, turning constraint (6) into
// Σ_k z_jk ≤ 1 and shifting each z_jk's cost to freq·(f_j(k) − f_j(0)) ≤ 0
// plus a constant Σ freq·f_j(0). With every row a ≤ with nonnegative
// right-hand side, the all-slack basis is primal feasible at the "no
// indexes" vertex and the primal simplex descends directly — no equality
// phase-1 work on the 100k-row instances of Table I.
func (ins *instance) solveLP(budget int64, gap float64, stop *fault.Stopper, parallelism int, directCap int, span *telemetry.Span) (chosen []int, cost float64, nodes int, finalGap float64, dnf bool, err error) {
	gChosen, gCost := ins.greedy(budget)
	if ins.lpVars() > directCap {
		return ins.solveLPSifted(gChosen, gCost, budget, gap, stop, parallelism, span)
	}

	m := lp.NewModel()
	xVar := make([]int, len(ins.cands))
	memCols := make([]int32, len(ins.cands))
	memVals := make([]float64, len(ins.cands))
	for ci := range ins.cands {
		xVar[ci] = m.AddVar(ins.cands[ci].writeCost, fmt.Sprintf("x_%s", ins.cands[ci].index.Key()), 1, true)
		memCols[ci] = int32(xVar[ci])
		memVals[ci] = float64(ins.cands[ci].size)
	}
	var baseSum float64
	for j := range ins.base {
		baseSum += ins.freq[j] * ins.base[j]
	}
	// Shared backing storage: the per-(query, candidate) VUB rows dominate
	// the model (one row per pair), so their column slices come from one
	// preallocated arena and all rows share a single {1, -1} value pair and
	// a single all-ones vector.
	pairs := 0
	maxRow := 1
	for _, pq := range ins.perQuery {
		pairs += len(pq)
		if len(pq) > maxRow {
			maxRow = len(pq)
		}
	}
	pairCols := make([]int32, 0, 2*pairs)
	pairVals := []float64{1, -1}
	ones := make([]float64, maxRow)
	for i := range ones {
		ones[i] = 1
	}
	for j, pq := range ins.perQuery {
		row := make([]int32, 0, len(pq))
		for _, a := range pq {
			z := m.AddVar(ins.freq[j]*(a.cost-ins.base[j]), fmt.Sprintf("z_%d_%d", j, a.other), 1, false)
			row = append(row, int32(z))
			// z_jk <= x_k (constraint (7)).
			base := len(pairCols)
			pairCols = append(pairCols, int32(z), int32(xVar[a.other]))
			m.AddConstraintCols(pairCols[base:], pairVals, lp.LE, 0)
		}
		// sum_k z_jk <= 1 (constraint (6) with z_j0 substituted out).
		m.AddConstraintCols(row, ones[:len(row)], lp.LE, 1)
	}
	// Memory budget (constraint (8)) — the last row, so its root dual is the
	// budget's shadow price.
	budgetRow := m.NumConstraints()
	m.AddConstraintCols(memCols, memVals, lp.LE, float64(budget))

	// Slight inflation keeps an incumbent that exactly matches the greedy
	// objective from being pruned, so optimal-equal solutions still close
	// the gap through the incumbent path. The MIP works in the shifted
	// objective (total minus baseSum).
	cutoff := gCost - baseSum
	cutoff += 1e-9 + 1e-9*math.Abs(cutoff)
	// Crash the root LP at the greedy vertex: with every greedy-chosen x
	// starting at its bound the z ≤ x rows open up immediately, instead of
	// forcing a long run of degenerate pivots from the all-zero start.
	crash := make([]int, 0, len(gChosen))
	for _, ci := range gChosen {
		crash = append(crash, xVar[ci])
	}
	res, err := lp.SolveMIP(m, lp.MIPOptions{
		Gap:          gap,
		Deadline:     stop.Deadline(),
		Context:      stop.Context(),
		Parallelism:  parallelism,
		Cutoff:       cutoff,
		CrashAtUpper: crash,
		Span:         span,
	})
	if err != nil {
		return nil, 0, 0, 0, false, err
	}
	if ins.prov != nil && res.RootDuals != nil {
		ins.prov.RootObjective = res.RootObjective + baseSum
		if d := -res.RootDuals[budgetRow]; d > 0 {
			ins.prov.BudgetDual = d
		}
	}
	cost = math.Inf(1)
	if res.Status == lp.Optimal {
		for ci := range ins.cands {
			if res.X[xVar[ci]] > 0.5 {
				chosen = append(chosen, ci)
			}
		}
		// Recompute the cost from the selection (z variables may leave slack
		// when an unused index is set).
		cost = ins.evalCost(chosen)
	}
	if gCost < cost {
		chosen, cost = gChosen, gCost
	}
	finalGap = math.Inf(1)
	if !math.IsInf(res.Bound, -1) && !math.IsInf(cost, 1) {
		bound := res.Bound + baseSum
		finalGap = 0
		if cost != 0 {
			finalGap = (cost - bound) / math.Abs(cost)
		}
		if finalGap < 0 {
			finalGap = 0
		}
	}
	return chosen, cost, res.Nodes, finalGap, res.DNF, nil
}

// evalCost returns F for the chosen candidate indices.
func (ins *instance) evalCost(chosen []int) float64 {
	selected := make(map[int]bool, len(chosen))
	for _, ci := range chosen {
		selected[ci] = true
	}
	var total float64
	for j, pq := range ins.perQuery {
		best := ins.base[j]
		for _, a := range pq {
			if selected[a.other] && a.cost < best {
				best = a.cost
			}
		}
		total += ins.freq[j] * best
	}
	for ci := range selected {
		total += ins.cands[ci].writeCost
	}
	return total
}

func (ins *instance) evalMem(chosen []int) int64 {
	var mem int64
	for _, ci := range chosen {
		mem += ins.cands[ci].size
	}
	return mem
}
