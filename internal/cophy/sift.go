package cophy

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/fault"
	"repro/internal/lp"
	"repro/internal/telemetry"
)

// This file is the sifting solve path for CoPhy models too large to hand to
// the MIP solver whole (the 100k-variable settings of Table I). Instead of
// materializing every (query, candidate) pair, it
//
//  1. runs a Lagrangian dual ascent on the budget-relaxed problem, which
//     yields both a lower bound valid over the FULL candidate set and a
//     per-candidate measure of how much dual support each candidate absorbs;
//  2. restricts the model to the candidates the ascent marks interesting
//     (plus each query's cheapest option and the greedy selection, so the
//     restriction always contains a known incumbent);
//  3. solves the restricted MIP with the greedy solution injected as the
//     starting incumbent, so gap-based termination works from the root node;
//  4. re-derives a full-model Lagrangian certificate from the restricted
//     root's duals and re-runs the density greedy over the root's fractional
//     support, which repairs the density rule's known knapsack failure mode.
//
// The restriction never invents solutions — any integral point of the
// restricted model is feasible for the full model at the same objective — so
// the returned selection is always valid; only the bound side needs (and
// gets) a full-model certificate.

const (
	// siftFracThreshold keeps candidates whose dual slack the ascent
	// consumed by at least this fraction.
	siftFracThreshold = 0.6
	// siftPruneMargin drops a (query, candidate) pair whose cost exceeds the
	// query's ascent dual by more than this fraction of the remaining
	// headroom to the base cost.
	siftPruneMargin = 0.3
	// siftAscentOps caps the ascent work per lambda evaluation (pass count
	// scales inversely with the pair count, floored at 8 passes).
	siftAscentOps = 80_000_000
)

// qoption is one (candidate, cost) option of a query in frequency-weighted
// units c_jk = freq_j * f_j(k).
type qoption struct {
	cost float64
	k    int32
}

// ascent is the Lagrangian dual machinery behind the sifting path: for any
// per-query duals v_j <= c_j0 and budget price lam >= 0,
//
//	sum_j v_j − lam*B − sum_k max(0, sum_j max(0, v_j − c_jk) − w_k − lam*s_k)
//
// is a lower bound on the total workload cost of every selection within the
// budget B (w_k is candidate k's write cost, s_k its size). The bound holds
// for arbitrary (v, lam), so it certifies the full candidate set no matter
// how the restricted model was chosen.
type ascent struct {
	ins    *instance
	budget int64
	perQ   [][]qoption // per query, sorted by cost ascending
	cap0   []float64   // c_j0 = freq_j * base_j
	v      []float64   // current per-query duals
	nextBP []int
	slack  []float64 // per-candidate remaining dual slack w_k + lam*s_k
	pairs  int
	passes int
}

func newAscent(ins *instance, budget int64) *ascent {
	a := &ascent{
		ins:    ins,
		budget: budget,
		perQ:   make([][]qoption, len(ins.perQuery)),
		cap0:   make([]float64, len(ins.perQuery)),
		v:      make([]float64, len(ins.perQuery)),
		nextBP: make([]int, len(ins.perQuery)),
		slack:  make([]float64, len(ins.cands)),
	}
	for j, pq := range ins.perQuery {
		a.cap0[j] = ins.freq[j] * ins.base[j]
		os := make([]qoption, 0, len(pq))
		for _, o := range pq {
			os = append(os, qoption{ins.freq[j] * o.cost, int32(o.other)})
		}
		sort.Slice(os, func(x, y int) bool {
			if os[x].cost != os[y].cost {
				return os[x].cost < os[y].cost
			}
			return os[x].k < os[y].k
		})
		a.perQ[j] = os
		a.pairs += len(os)
	}
	a.passes = 200
	if a.pairs > 0 && a.passes*a.pairs > siftAscentOps {
		a.passes = siftAscentOps / a.pairs
		if a.passes < 8 {
			a.passes = 8
		}
	}
	return a
}

// ascend maximizes the dual for a fixed budget price lam and returns the
// bound. Multi-pass: each pass raises every query's dual by at most one
// breakpoint segment, so early queries cannot starve later ones of slack.
func (a *ascent) ascend(lam float64) float64 {
	for k := range a.slack {
		a.slack[k] = a.ins.cands[k].writeCost + lam*float64(a.ins.cands[k].size)
	}
	for j, os := range a.perQ {
		if len(os) > 0 && os[0].cost < a.cap0[j] {
			a.v[j] = os[0].cost
			a.nextBP[j] = 0
		} else {
			a.v[j] = a.cap0[j]
			a.nextBP[j] = len(os)
		}
	}
	for pass := 0; pass < a.passes; pass++ {
		progress := false
		for j, os := range a.perQ {
			if a.v[j] >= a.cap0[j] {
				continue
			}
			i := a.nextBP[j]
			for i < len(os) && os[i].cost <= a.v[j] {
				i++
			}
			a.nextBP[j] = i
			next := a.cap0[j]
			if i < len(os) && os[i].cost < next {
				next = os[i].cost
			}
			delta := next - a.v[j]
			for _, o := range os[:i] {
				if a.slack[o.k] < delta {
					delta = a.slack[o.k]
				}
			}
			if delta <= 0 {
				continue
			}
			for _, o := range os[:i] {
				a.slack[o.k] -= delta
			}
			a.v[j] += delta
			progress = true
		}
		if !progress {
			break
		}
	}
	var sum float64
	for j := range a.v {
		sum += a.v[j]
	}
	return sum - lam*float64(a.budget)
}

// search scans a geometric lambda grid around the greedy solution's average
// savings density, then refines around the best point. It leaves the ascent
// state (v, slack) at the best lambda and returns (bound, lambda). The
// stopper is polled between grid points; on expiry or cancellation the best
// bound so far stands (it is valid regardless of how far the search got).
func (a *ascent) search(gCost, baseSum float64, stop *fault.Stopper) (float64, float64) {
	lavg := (baseSum - gCost) / float64(a.budget)
	if lavg <= 0 {
		lavg = 1 / float64(a.budget)
	}
	bestLB, bestLam := math.Inf(-1), 0.0
	expired := func() bool {
		return stop.Check() != fault.StopNone
	}
	for i := -14; i <= 3; i++ {
		lam := lavg * math.Pow(2, float64(i))
		if lb := a.ascend(lam); lb > bestLB {
			bestLB, bestLam = lb, lam
		}
		if expired() {
			break
		}
	}
	for f := 0.55; f < 1.9; f += 0.1 {
		if expired() {
			break
		}
		lam := bestLam * f
		if lb := a.ascend(lam); lb > bestLB {
			bestLB, bestLam = lb, lam
		}
	}
	// Restore the ascent state of the winner (cheap relative to the search).
	if lb := a.ascend(bestLam); lb > bestLB {
		bestLB = lb
	}
	return bestLB, bestLam
}

// consumedFrac returns, per candidate, the fraction of its dual slack
// w_k + lam*s_k the current ascent state consumed — the sifting signal for
// which candidates the dual "wants".
func (a *ascent) consumedFrac(lam float64) []float64 {
	frac := make([]float64, len(a.ins.cands))
	for k := range a.ins.cands {
		full := a.ins.cands[k].writeCost + lam*float64(a.ins.cands[k].size)
		if full > 0 {
			frac[k] = 1 - a.slack[k]/full
		}
	}
	return frac
}

// lagrangeBound evaluates the Lagrangian bound at arbitrary per-query duals
// vv (in frequency-weighted units, capped at c_j0) and budget price lam >= 0,
// over ALL candidates. Used to certify restricted-model duals globally.
func (ins *instance) lagrangeBound(vv []float64, lam float64, budget int64) float64 {
	var sum float64
	for j := range vv {
		sum += vv[j]
	}
	sum -= lam * float64(budget)
	for k := range ins.cands {
		var sup float64
		for _, a := range ins.cands[k].queries {
			cjk := ins.freq[a.other] * a.cost
			if vv[a.other] > cjk {
				sup += vv[a.other] - cjk
			}
		}
		over := sup - ins.cands[k].writeCost - lam*float64(ins.cands[k].size)
		if over > 0 {
			sum -= over
		}
	}
	return sum
}

// solveLPSifted is the large-model explicit-LP path: restrict, solve the
// restricted MIP from the greedy incumbent, certify against the full model.
func (ins *instance) solveLPSifted(gChosen []int, gCost float64, budget int64, gap float64, stop *fault.Stopper, parallelism int, span *telemetry.Span) (chosen []int, cost float64, nodes int, finalGap float64, dnf bool, err error) {
	var baseSum float64
	for j := range ins.base {
		baseSum += ins.freq[j] * ins.base[j]
	}
	if ins.prov != nil {
		ins.prov.Sifted = true
	}

	asp := span.Child("cophy.ascent")
	asc := newAscent(ins, budget)
	ascBound, lam := asc.search(gCost, baseSum, stop)
	asp.SetFloat("bound", ascBound)
	asp.SetFloat("lambda", lam)
	asp.SetInt("passes", int64(asc.passes))
	asp.End()

	// Restriction: ascent support, plus each query's cheapest option, plus
	// the greedy selection (so the injected incumbent is representable).
	inR := make([]bool, len(ins.cands))
	nR := 0
	mark := func(k int) {
		if !inR[k] {
			inR[k] = true
			nR++
		}
	}
	for k, f := range asc.consumedFrac(lam) {
		if f >= siftFracThreshold {
			mark(k)
		}
	}
	for _, os := range asc.perQ {
		if len(os) > 0 {
			mark(int(os[0].k))
		}
	}
	gSet := make([]bool, len(ins.cands))
	for _, ci := range gChosen {
		gSet[ci] = true
		mark(ci)
	}

	// Restricted substituted model (same formulation as the direct path; see
	// solveLP). Pairs far above the query's ascent dual are pruned, except
	// for greedy-selected candidates, which the incumbent needs intact.
	ssp := span.Child("cophy.sift")
	mod := lp.NewModel()
	xVar := make([]int, len(ins.cands))
	var memCols []int32
	var memVals []float64
	for ci := range ins.cands {
		xVar[ci] = -1
		if inR[ci] {
			xVar[ci] = mod.AddVar(ins.cands[ci].writeCost, fmt.Sprintf("x_%s", ins.cands[ci].index.Key()), 1, true)
			memCols = append(memCols, int32(xVar[ci]))
			memVals = append(memVals, float64(ins.cands[ci].size))
		}
	}
	pairs := 0
	maxRow := 1
	for _, pq := range ins.perQuery {
		pairs += len(pq)
		if len(pq) > maxRow {
			maxRow = len(pq)
		}
	}
	pairCols := make([]int32, 0, 2*pairs)
	pairVals := []float64{1, -1}
	ones := make([]float64, maxRow)
	for i := range ones {
		ones[i] = 1
	}
	// incZ[j] is the query's incumbent z column (cheapest greedy-selected
	// pair), assignRow[j] its assignment-row index for the dual mapping.
	incZ := make([]int, len(ins.perQuery))
	incCost := make([]float64, len(ins.perQuery))
	assignRow := make([]int, len(ins.perQuery))
	nrow := 0
	kept := 0
	for j, pq := range ins.perQuery {
		incZ[j] = -1
		incCost[j] = ins.base[j]
		row := make([]int32, 0, len(pq))
		for _, a := range pq {
			if xVar[a.other] < 0 {
				continue
			}
			if c := ins.freq[j] * a.cost; !gSet[a.other] && c > asc.v[j]+siftPruneMargin*(asc.cap0[j]-asc.v[j]) {
				continue
			}
			z := mod.AddVar(ins.freq[j]*(a.cost-ins.base[j]), fmt.Sprintf("z_%d_%d", j, a.other), 1, false)
			row = append(row, int32(z))
			base := len(pairCols)
			pairCols = append(pairCols, int32(z), int32(xVar[a.other]))
			mod.AddConstraintCols(pairCols[base:], pairVals, lp.LE, 0)
			nrow++
			kept++
			if gSet[a.other] && a.cost < incCost[j] {
				incCost[j] = a.cost
				incZ[j] = z
			}
		}
		mod.AddConstraintCols(row, ones[:len(row)], lp.LE, 1)
		assignRow[j] = nrow
		nrow++
	}
	mod.AddConstraintCols(memCols, memVals, lp.LE, float64(budget))
	budgetRow := nrow

	inc := make([]float64, mod.NumVars())
	for _, ci := range gChosen {
		inc[xVar[ci]] = 1
	}
	for j := range ins.perQuery {
		if incZ[j] >= 0 {
			inc[incZ[j]] = 1
		}
	}

	ssp.SetInt("restricted_candidates", int64(nR))
	ssp.SetInt("pairs_kept", int64(kept))
	ssp.SetInt("vars", int64(mod.NumVars()))
	ssp.SetInt("rows", int64(mod.NumConstraints()))

	// Crash the root LP at the greedy vertex (see solveLP): the hinted x
	// columns start at their bound, opening the z ≤ x rows immediately.
	crash := make([]int, 0, len(gChosen))
	for _, ci := range gChosen {
		crash = append(crash, xVar[ci])
	}
	res, err := lp.SolveMIP(mod, lp.MIPOptions{
		Gap:          gap,
		Deadline:     stop.Deadline(),
		Context:      stop.Context(),
		Parallelism:  parallelism,
		Incumbent:    inc,
		CrashAtUpper: crash,
		Span:         ssp,
	})
	if err != nil {
		ssp.Discard()
		return nil, 0, 0, 0, false, err
	}

	chosen, cost = gChosen, gCost
	if res.Status == lp.Optimal && len(res.X) > 0 {
		var mipChosen []int
		for ci := range ins.cands {
			if xVar[ci] >= 0 && res.X[xVar[ci]] > 0.5 {
				mipChosen = append(mipChosen, ci)
			}
		}
		if c := ins.evalCost(mipChosen); c < cost {
			chosen, cost = mipChosen, c
		}
	}
	// Density greedy over the root relaxation's fractional support: the
	// support is the set the LP proves worth buying fractions of, and greedy
	// within it routinely beats greedy over everything.
	if res.RootX != nil {
		support := make([]bool, len(ins.cands))
		for ci := range ins.cands {
			if xVar[ci] >= 0 && res.RootX[xVar[ci]] > 1e-6 {
				support[ci] = true
			}
		}
		if sChosen, sCost := ins.greedyMasked(budget, support); sCost < cost {
			chosen, cost = sChosen, sCost
		}
	}

	// Full-model certificate: the ascent bound, or the Lagrangian bound at
	// the restricted root's duals — whichever is tighter.
	bound := ascBound
	if res.RootDuals != nil {
		vv := make([]float64, len(ins.perQuery))
		for j := range vv {
			alpha := res.RootDuals[assignRow[j]]
			if alpha > 0 {
				alpha = 0
			}
			vv[j] = asc.cap0[j] + alpha
		}
		lamLP := -res.RootDuals[budgetRow]
		if lamLP < 0 {
			lamLP = 0
		}
		if lb := ins.lagrangeBound(vv, lamLP, budget); lb > bound {
			bound = lb
		}
		if ins.prov != nil {
			ins.prov.RootObjective = res.RootObjective + baseSum
			ins.prov.BudgetDual = lamLP
		}
	}

	finalGap = math.Inf(1)
	if !math.IsInf(bound, -1) && cost != 0 {
		finalGap = (cost - bound) / math.Abs(cost)
		if finalGap < 0 {
			finalGap = 0
		}
	}
	ssp.SetFloat("full_model_bound", bound)
	ssp.SetFloat("full_model_gap", finalGap)
	ssp.End()
	return chosen, cost, res.Nodes, finalGap, res.DNF, nil
}
