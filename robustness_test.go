package indexsel

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/whatif"
)

// TestNoisyCostRobustness injects multiplicative what-if noise (the paper's
// Section IV-B motivation: optimizer estimates are "too often inaccurate")
// and checks that Extend still returns a feasible selection whose TRUE cost
// is close to the noise-free run's.
func TestNoisyCostRobustness(t *testing.T) {
	w := smallWorkload(t)
	m := costmodel.New(w, costmodel.SingleIndex)
	budget := m.Budget(0.3)

	clean, err := core.Select(w, whatif.New(m), core.Options{Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	for _, eps := range []float64{0.05, 0.15, 0.3} {
		noisy := whatif.NoisySource{Src: m, Eps: eps, Seed: 99}
		res, err := core.Select(w, whatif.New(noisy), core.Options{Budget: budget})
		if err != nil {
			t.Fatalf("eps %v: %v", eps, err)
		}
		if got := m.TotalSize(res.Selection); got > budget {
			t.Errorf("eps %v: true memory %d exceeds budget %d", eps, got, budget)
		}
		trueCost := m.TotalCost(res.Selection)
		if trueCost > clean.Cost*(1+2*eps)+1e-9 {
			t.Errorf("eps %v: true cost %v degraded beyond 1+2eps vs clean %v",
				eps, trueCost, clean.Cost)
		}
	}
}

// TestNoisyCostInternedFastPath: the interned per-ID cost path must serve the
// SAME (sanitized, perturbed) values as the generic entry point — the noise
// and the sanitization both key off the (query, index) identity, never the
// call route, so the incremental evaluator and a from-scratch evaluation see
// one consistent noisy world.
func TestNoisyCostInternedFastPath(t *testing.T) {
	w := smallWorkload(t)
	m := costmodel.New(w, costmodel.SingleIndex)
	cands, err := AllCandidates(w, 2)
	if err != nil {
		t.Fatal(err)
	}
	opt := whatif.New(whatif.NoisySource{Src: m, Eps: 0.2, Seed: 17})
	in := opt.Interner()
	checked := 0
	for _, k := range cands {
		id := in.Intern(k)
		for _, q := range w.Queries {
			a := opt.CostWithInterned(q, k, id)
			b := opt.CostWithIndex(q, k)
			if a != b {
				t.Fatalf("interned cost %v != generic cost %v for (q%d, %s)", a, b, q.ID, k.Key())
			}
			checked++
		}
		if opt.IndexSizeInterned(k, id) != opt.IndexSize(k) {
			t.Fatalf("interned size differs for %s", k.Key())
		}
	}
	if checked == 0 {
		t.Fatal("no (query, candidate) pair checked")
	}
}

// TestNoisyCostRobustnessMeasured runs Extend over a NOISY MeasuredSource —
// engine-executed costs perturbed like inaccurate estimates — and checks the
// run still yields a budget-feasible selection with a sane cost. Measured
// sources force whole-selection (exact) evaluation, so this exercises the
// QueryCost noise path the analytic test above never hits.
func TestNoisyCostRobustnessMeasured(t *testing.T) {
	w := smallWorkload(t)
	db, err := NewDB(w, 5)
	if err != nil {
		t.Fatal(err)
	}
	ms := NewMeasuredSource(db, 5)
	budget := ms.Budget(0.3)
	noisy := whatif.NoisySource{Src: ms, Eps: 0.15, Seed: 31}
	opt := whatif.New(noisy)
	res, err := core.Select(w, opt, core.Options{Budget: budget, ExactEvaluation: true})
	if err != nil {
		t.Fatal(err)
	}
	var mem int64
	for _, k := range res.Selection {
		mem += ms.IndexSize(k) // true catalog sizes; noise never touches sizes
	}
	if mem > budget {
		t.Errorf("true memory %d exceeds budget %d", mem, budget)
	}
	if math.IsNaN(res.Cost) || math.IsInf(res.Cost, 0) || res.Cost < 0 {
		t.Errorf("cost %v not sane", res.Cost)
	}
	if res.Cost > res.InitialCost {
		t.Errorf("selection cost %v worse than no indexes (%v)", res.Cost, res.InitialCost)
	}
}

// TestSelectionAtBudgetProperty: for any replay budget, the returned
// selection's memory never exceeds it and its cost matches a from-scratch
// evaluation.
func TestSelectionAtBudgetProperty(t *testing.T) {
	w := smallWorkload(t)
	m := costmodel.New(w, costmodel.SingleIndex)
	res, err := core.Select(w, whatif.New(m), core.Options{Budget: m.Budget(0.6)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) == 0 {
		t.Fatal("no steps")
	}
	maxMem := res.Memory
	f := func(raw uint32) bool {
		budget := int64(raw) % (2 * maxMem)
		sel, cost, mem := res.SelectionAt(budget)
		if mem > budget {
			return false
		}
		got := m.TotalCost(sel)
		return got <= cost*1.000001 && got >= cost*0.999999
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestFrontierDominatesHeuristics: at every prefix budget of the Extend
// trace, Extend's cost is at least as good as the frequency heuristic H1's
// at the same budget — the qualitative Figure 2/4 relationship.
func TestFrontierDominatesHeuristics(t *testing.T) {
	w := smallWorkload(t)
	m := costmodel.New(w, costmodel.SingleIndex)
	res, err := core.Select(w, whatif.New(m), core.Options{Budget: m.Budget(0.5)})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.Steps {
		if i%3 != 0 {
			continue // sample a third of the budgets to keep the test fast
		}
		adv := NewAdvisor(w, WithBudgetBytes(s.MemAfter))
		h1, err := adv.Select(StrategyH1)
		if err != nil {
			t.Fatal(err)
		}
		_, cost, _ := res.SelectionAt(s.MemAfter)
		if cost > h1.Cost*1.0001 {
			t.Errorf("budget %d: Extend cost %v worse than H1 %v", s.MemAfter, cost, h1.Cost)
		}
	}
}
