package indexsel

import (
	"context"
	"time"

	"repro/internal/drift"
	"repro/internal/service"
	"repro/internal/workload"
)

// Online-tuning re-exports: the windowed observation model, drift scoring,
// guardrailed delta planning (this file's PlanDelta) and the tuning daemon.
// See internal/drift and internal/service for field-level docs.
type (
	// Observation is one aggregated query-template observation streamed to
	// the tuning daemon (POST /observe wire format).
	Observation = drift.Observation
	// ObservationWindow is the bounded, decay-weighted workload accumulator.
	ObservationWindow = drift.Window
	// WindowConfig sizes an ObservationWindow (half-life, template cap).
	WindowConfig = drift.WindowConfig
	// WorkloadProfile is the per-template cost-share summary drift scoring
	// compares.
	WorkloadProfile = drift.Profile
	// DriftScore quantifies drift between two profiles (fingerprint
	// distance + cost-mass shift).
	DriftScore = drift.Score
	// DeltaOptions parameterizes PlanDelta (guardrail epsilon, heavy-K,
	// reconfiguration bias). A zero Budget uses the advisor's budget.
	DeltaOptions = drift.PlanOptions
	// DeltaPlan is a guardrailed creates/drops plan against a deployed
	// selection, with per-heavy-query evidence.
	DeltaPlan = drift.Plan
	// DeltaGuardrailReport is the per-heavy-query never-regress evidence.
	DeltaGuardrailReport = drift.GuardrailReport
	// HeavyQuery is one guardrail-protected query's before/after cost.
	HeavyQuery = drift.HeavyQuery

	// DaemonConfig configures the online tuning daemon.
	DaemonConfig = service.Config
	// TuningDaemon is the long-running observe/drift/retune service.
	TuningDaemon = service.Daemon
	// TuningStatus is the daemon's /status payload.
	TuningStatus = service.Status
	// JournalRecord is one entry of the daemon's crash-safe rollback
	// journal.
	JournalRecord = service.Record
	// RecoveryReport summarizes a journal recovery (serve -resume).
	RecoveryReport = service.RecoveryReport
)

// NewObservationWindow builds a bounded decay-weighted window over the
// schema's tables and attributes.
func NewObservationWindow(schema *Workload, cfg WindowConfig) *ObservationWindow {
	return drift.NewWindow(schema, cfg)
}

// NewWorkloadProfile summarizes a workload for drift scoring; cost prices
// one execution of a query (nil weights by frequency alone).
func NewWorkloadProfile(w *Workload, cost func(Query) float64) *WorkloadProfile {
	return drift.NewProfile(w, cost)
}

// CompareProfiles scores the drift from a tuned baseline to the current
// window profile.
func CompareProfiles(baseline, current *WorkloadProfile) DriftScore {
	return drift.Compare(baseline, current)
}

// NewTuningDaemon builds (but does not start) the online tuning daemon; see
// service.Config. Callers must Resume() before Start().
func NewTuningDaemon(cfg DaemonConfig) (*TuningDaemon, error) { return service.New(cfg) }

// PlanDelta selects an index configuration for the advisor's workload (the
// current observation-window snapshot) and diffs it against the deployed
// selection, returning a creates/drops delta plan with a never-regress
// guardrail report: the plan is Accepted only if no heavy query (top-K by
// frequency·base-cost) regresses beyond (1+Epsilon) of its deployed cost.
//
// A zero o.Budget uses the advisor's budget; the advisor's parallelism and
// approximation settings apply unless overridden in o. Context carries the
// anytime contract of SelectContext: a deadline yields a partial but valid,
// guardrail-checked plan, never an error.
func (ad *Advisor) PlanDelta(ctx context.Context, deployed Selection, o DeltaOptions) (*DeltaPlan, error) {
	if o.Budget <= 0 {
		o.Budget = ad.Budget()
	}
	if o.Parallelism == 0 {
		o.Parallelism = ad.parallelism
	}
	if o.Approximate == 0 {
		o.Approximate = ad.approximate
	}
	start := time.Now()
	plan, err := drift.PlanDelta(ctx, ad.w, ad.opt, deployed, o)
	mSelectDur.Observe(time.Since(start).Seconds())
	if err != nil {
		mSelectErrs.Inc()
		return nil, err
	}
	mSelects.Inc()
	if plan.Partial {
		mSelectPartial.Inc()
	}
	return plan, nil
}

// ApplyDeltaPlan reconciles a deployed selection with an accepted plan,
// returning the new deployed set (pure function; persistence is the
// daemon's job). It refuses rejected plans.
func ApplyDeltaPlan(deployed Selection, plan *DeltaPlan) (Selection, bool) {
	if plan == nil || !plan.Accepted {
		return deployed, false
	}
	next := deployed.Clone()
	for _, k := range plan.Drops {
		next.Remove(k)
	}
	for _, k := range plan.Creates {
		next.Add(k)
	}
	return next, true
}

// ParseIndexKey resolves a canonical index key (comma-joined attribute IDs,
// as stored in the daemon's journal) against a workload's schema.
func ParseIndexKey(w *Workload, key string) (Index, error) {
	return workload.ParseIndexKey(w, key)
}
