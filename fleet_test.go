package indexsel

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/costmodel"
	"repro/internal/faultinject"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// fleetFamily builds n structurally identical tenants (frequency-perturbed)
// from one generated base workload.
func fleetFamily(t testing.TB, baseSeed int64, n int, skew float64) []FleetTenant {
	t.Helper()
	cfg := workload.DefaultGenConfig()
	cfg.Tables, cfg.AttrsPerTable, cfg.QueriesPerTable = 2, 10, 20
	cfg.RowsBase = 10_000
	cfg.Seed = baseSeed
	base := workload.MustGenerate(cfg)
	members, err := workload.TenantFamily(base, n, baseSeed*100, skew)
	if err != nil {
		t.Fatal(err)
	}
	tenants := make([]FleetTenant, n)
	for i, w := range members {
		tenants[i] = FleetTenant{Workload: w}
	}
	return tenants
}

// sameRec asserts two recommendations are bit-identical in every
// reproducibility-relevant field: the selected indexes, the exact costs and
// memory, the construction trace, and the stop classification.
func sameRec(t *testing.T, label string, a, b *Recommendation) {
	t.Helper()
	if a == nil || b == nil {
		t.Fatalf("%s: nil recommendation (%v, %v)", label, a, b)
	}
	if len(a.Indexes) != len(b.Indexes) {
		t.Fatalf("%s: %d vs %d indexes", label, len(a.Indexes), len(b.Indexes))
	}
	for i := range a.Indexes {
		if a.Indexes[i].Key() != b.Indexes[i].Key() || a.Indexes[i].Table != b.Indexes[i].Table {
			t.Fatalf("%s: index %d differs: %v vs %v", label, i, a.Indexes[i], b.Indexes[i])
		}
	}
	if a.Cost != b.Cost || a.BaseCost != b.BaseCost || a.Memory != b.Memory {
		t.Fatalf("%s: cost/memory differ: (%v,%v,%d) vs (%v,%v,%d)",
			label, a.Cost, a.BaseCost, a.Memory, b.Cost, b.BaseCost, b.Memory)
	}
	if a.StopReason != b.StopReason || a.Partial != b.Partial {
		t.Fatalf("%s: stop state differs: %v/%v vs %v/%v",
			label, a.StopReason, a.Partial, b.StopReason, b.Partial)
	}
	if len(a.Steps) != len(b.Steps) {
		t.Fatalf("%s: %d vs %d steps", label, len(a.Steps), len(b.Steps))
	}
	for i := range a.Steps {
		sa, sb := a.Steps[i], b.Steps[i]
		if sa.Index.Key() != sb.Index.Key() || sa.CostAfter != sb.CostAfter || sa.MemAfter != sb.MemAfter {
			t.Fatalf("%s: step %d differs: %+v vs %+v", label, i, sa, sb)
		}
	}
}

// Cluster-of-one fleets and clustered fleets must both reproduce standalone
// Select bit-for-bit — the exactness claim of cross-tenant sharing.
func TestFleetDifferentialBitIdentity(t *testing.T) {
	tenants := append(fleetFamily(t, 1, 3, 0.8), fleetFamily(t, 2, 2, 0.8)...)

	standalone := make([]*Recommendation, len(tenants))
	for i, tn := range tenants {
		rec, err := NewAdvisor(tn.Workload, WithParallelism(1)).Select(StrategyExtend)
		if err != nil {
			t.Fatal(err)
		}
		standalone[i] = rec
	}

	for _, mode := range []struct {
		name    string
		disable bool
	}{{"cluster-of-one", true}, {"clustered", false}} {
		res, err := TuneFleet(context.Background(), tenants, FleetOptions{
			Strategy:       StrategyExtend,
			Workers:        1,
			Parallelism:    1,
			DisableSharing: mode.disable,
		})
		if err != nil {
			t.Fatal(err)
		}
		wantClusters := 2
		if mode.disable {
			wantClusters = len(tenants)
		}
		if res.Clusters != wantClusters {
			t.Fatalf("%s: %d clusters, want %d", mode.name, res.Clusters, wantClusters)
		}
		for i, tr := range res.Tenants {
			if tr.Err != nil {
				t.Fatalf("%s: tenant %d failed: %v", mode.name, i, tr.Err)
			}
			sameRec(t, mode.name, standalone[i], tr.Rec)
		}
		if !mode.disable && res.HitRate() == 0 {
			t.Fatal("clustered fleet recorded no shared-cache hits")
		}
	}
}

// Shared candidate enumeration (per-cluster Combos, per-tenant
// representatives) must keep the candidate strategies standalone-identical.
func TestFleetDifferentialCandidateStrategy(t *testing.T) {
	tenants := fleetFamily(t, 3, 3, 1.0)
	standalone := make([]*Recommendation, len(tenants))
	for i, tn := range tenants {
		rec, err := NewAdvisor(tn.Workload).Select(StrategyH5)
		if err != nil {
			t.Fatal(err)
		}
		standalone[i] = rec
	}
	res, err := TuneFleet(context.Background(), tenants, FleetOptions{Strategy: StrategyH5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range res.Tenants {
		if tr.Err != nil {
			t.Fatalf("tenant %d: %v", i, tr.Err)
		}
		sameRec(t, "H5", standalone[i], tr.Rec)
	}
}

// Under a table budget of ~25% of the unbounded footprint the fleet must
// complete with identical recommendations, stay under the budget at all
// times, and actually evict.
func TestFleetMemoryBudget(t *testing.T) {
	var tenants []FleetTenant
	for seed := int64(1); seed <= 4; seed++ {
		tenants = append(tenants, fleetFamily(t, seed, 3, 0.6)...)
	}
	unbounded, err := TuneFleet(context.Background(), tenants, FleetOptions{Workers: 1, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if unbounded.Evictions != 0 {
		t.Fatalf("unbounded run evicted %d times", unbounded.Evictions)
	}
	footprint := unbounded.ResidentBytes
	if footprint <= 0 {
		t.Fatal("unbounded run reports no resident table bytes")
	}

	budget := footprint / 4
	bounded, err := TuneFleet(context.Background(), tenants, FleetOptions{
		Workers:          1,
		Parallelism:      1,
		TableBudgetBytes: budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range tenants {
		if bounded.Tenants[i].Err != nil {
			t.Fatalf("tenant %d failed under budget: %v", i, bounded.Tenants[i].Err)
		}
		sameRec(t, "budgeted", unbounded.Tenants[i].Rec, bounded.Tenants[i].Rec)
	}
	if bounded.Evictions == 0 {
		t.Fatal("bounded run performed no evictions")
	}
	if bounded.MaxResidentBytes > budget {
		t.Fatalf("resident table bytes peaked at %d, budget %d", bounded.MaxResidentBytes, budget)
	}
	if bounded.ResidentBytes > budget {
		t.Fatalf("final resident %d exceeds budget %d", bounded.ResidentBytes, budget)
	}
}

// One tenant panicking (crashing cost source) or timing out must yield an
// isolated error/partial for that tenant only; CI runs this under -race.
func TestFleetChaosIsolation(t *testing.T) {
	tenants := fleetFamily(t, 5, 3, 0.5)

	// Tenant 3: a cost source that panics mid-run. Its distinct Source value
	// makes it a singleton cluster, so the poisoned cache touches nobody.
	crashW := tenants[0].Workload
	crashSrc := &faultinject.Source{
		Src:    costmodel.New(crashW, costmodel.SingleIndex),
		Class:  faultinject.Panic,
		OnCall: 7,
	}
	tenants = append(tenants, FleetTenant{ID: "crasher", Workload: crashW, Source: crashSrc})

	// Tenant 4: an impossible deadline; the anytime contract demands a
	// Partial recommendation, not an error.
	tenants = append(tenants, FleetTenant{
		ID:       "rushed",
		Workload: tenants[1].Workload,
		Deadline: time.Nanosecond,
	})

	res, err := TuneFleet(context.Background(), tenants, FleetOptions{Workers: 2, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	var pe *WorkerPanicError
	crash := res.Tenants[3]
	if crash.Err == nil || !errors.As(crash.Err, &pe) {
		t.Fatalf("crasher err = %v, want WorkerPanicError", crash.Err)
	}
	rushed := res.Tenants[4]
	if rushed.Err != nil {
		t.Fatalf("rushed tenant errored: %v", rushed.Err)
	}
	if !rushed.Rec.Partial || !rushed.Rec.StopReason.Interrupted() {
		t.Fatalf("rushed tenant: partial=%v reason=%v, want interrupted partial",
			rushed.Rec.Partial, rushed.Rec.StopReason)
	}
	for i := 0; i < 3; i++ {
		tr := res.Tenants[i]
		if tr.Err != nil || tr.Rec == nil || tr.Rec.Partial {
			t.Fatalf("healthy tenant %d affected: err=%v rec=%+v", i, tr.Err, tr.Rec)
		}
	}
	if res.Failed() != 1 {
		t.Fatalf("Failed() = %d, want 1", res.Failed())
	}
}

// Sharing must pay: a clustered fleet serves most probes from the shared
// caches and makes far fewer source calls than an unshared one.
func TestFleetSharingReducesCalls(t *testing.T) {
	tenants := fleetFamily(t, 7, 6, 0.8)
	shared, err := TuneFleet(context.Background(), tenants, FleetOptions{Workers: 1, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	unshared, err := TuneFleet(context.Background(), tenants, FleetOptions{
		Workers: 1, Parallelism: 1, DisableSharing: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if shared.Clusters != 1 || unshared.Clusters != len(tenants) {
		t.Fatalf("clusters: shared %d, unshared %d", shared.Clusters, unshared.Clusters)
	}
	if shared.SharedCalls >= unshared.SharedCalls {
		t.Fatalf("sharing saved nothing: %d calls shared vs %d unshared",
			shared.SharedCalls, unshared.SharedCalls)
	}
	if shared.HitRate() <= 0.5 {
		t.Fatalf("shared hit rate %v, want > 0.5 for a 6-tenant cluster", shared.HitRate())
	}
}

func TestFleetProgressPublished(t *testing.T) {
	tenants := fleetFamily(t, 9, 3, 0.5)
	if _, err := TuneFleet(context.Background(), tenants, FleetOptions{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	st, ok := telemetry.FleetSnapshot()
	if !ok || !st.Done || st.Active {
		t.Fatalf("fleet progress not finished: %+v ok=%v", st, ok)
	}
	if st.Tenants != 3 || st.Completed != 3 || st.Queued != 0 || st.Running != 0 {
		t.Fatalf("fleet progress counts: %+v", st)
	}
	if st.SharedHitRate == 0 {
		t.Fatalf("fleet progress lost the shared hit rate: %+v", st)
	}
}

func TestFleetValidation(t *testing.T) {
	if _, err := TuneFleet(context.Background(), nil, FleetOptions{}); err == nil {
		t.Fatal("empty fleet accepted")
	}
	if _, err := TuneFleet(context.Background(), []FleetTenant{{ID: "x"}}, FleetOptions{}); err == nil {
		t.Fatal("tenant without workload accepted")
	}
}
